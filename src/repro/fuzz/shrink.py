"""Divergence shrinking and corpus case I/O.

When a differential run diverges, :func:`shrink_program` delta-debugs
the item list down to a locally minimal program that still diverges,
and :func:`write_case` emits it as a self-contained, replayable ``.s``
file (initial machine state in header comments, body in the assembler
dialect) under ``tests/fuzz_corpus/``.  :func:`load_case` reads such a
file back for ``repro fuzz --replay``.

Shrinking operates on *items* (atomic line groups), never raw lines,
so a pointer setup is removed together with its dereference.  Anchor
labels and the halt are non-removable, so no candidate ever dangles a
branch target; removing a still-called subroutine merely fails to
link, which the predicate reports as "not failing" and the candidate
is rejected.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, List

from repro.fuzz.generator import FuzzProgram, Item

#: predicate: does this candidate still exhibit the failure?
Predicate = Callable[[FuzzProgram], bool]

_CASE_MAGIC = "; repro fuzz case"


def _keep(program: FuzzProgram, keep: set) -> FuzzProgram:
    items = [item for index, item in enumerate(program.items)
             if not item.removable or index in keep]
    return dataclasses.replace(program, items=items)


def shrink_program(program: FuzzProgram, failing: Predicate,
                   max_tests: int = 400) -> FuzzProgram:
    """ddmin-style greedy minimisation: repeatedly drop chunks of
    removable items (halving the chunk size when nothing sticks) while
    ``failing`` keeps returning True.  ``max_tests`` bounds the number
    of candidate executions."""
    removable = [index for index, item in enumerate(program.items)
                 if item.removable]
    keep = set(removable)
    tests = 0
    chunk = max(1, len(keep) // 2)
    while chunk >= 1 and tests < max_tests:
        ordered = sorted(keep)
        position = 0
        while position < len(ordered) and tests < max_tests:
            trial = keep - set(ordered[position:position + chunk])
            tests += 1
            if trial != keep and failing(_keep(program, trial)):
                keep = trial
                ordered = sorted(keep)
                # stay at the same position: the next chunk slid in
            else:
                position += chunk
        chunk //= 2
    return _keep(program, keep)


def write_case(program: FuzzProgram, path: Path,
               note: str = "") -> None:
    """Emit ``program`` as a replayable ``.s`` corpus case."""
    lines = [_CASE_MAGIC + (f" — {note}" if note else ""),
             "; replay: repro fuzz --replay " + path.name]
    for key, value in program.metadata():
        lines.append(f"; {key}: 0x{value:X}")
    lines.append(program.body_text().rstrip("\n"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")


def load_case(path: Path) -> FuzzProgram:
    """Parse a corpus case back into a :class:`FuzzProgram`.

    Each body line becomes its own item: labels are (non-removable)
    anchors, the DONE-port store is the halt, everything else an
    instruction — so a loaded case can be replayed or even shrunk
    further."""
    program = FuzzProgram(seed=0)
    items: List[Item] = []
    in_body = False
    for raw in Path(path).read_text().splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if not in_body and line.startswith(";"):
            text = line[1:].strip()
            if ":" not in text:
                continue
            key, _, value = text.partition(":")
            key, value = key.strip(), value.strip()
            try:
                number = int(value, 0)
            except ValueError:
                continue
            if key == "seed":
                program.seed = number
            elif key == "sp":
                program.sp = number
            elif key == "mem-seed":
                program.mem_seed = number
            elif key == "mpu-segb1":
                program.mpu_segb1 = number
            elif key == "mpu-segb2":
                program.mpu_segb2 = number
            elif key == "mpu-sam":
                program.mpu_sam = number
            elif key == "mpu-ctl0":
                program.mpu_ctl0 = number
            elif key.startswith("r") and key[1:].isdigit():
                program.regs[int(key[1:])] = number
            continue
        if line.strip() == ".text":
            in_body = True
            continue
        if not in_body:
            continue
        stripped = line.strip()
        if stripped.endswith(":"):
            items.append(Item("anchor", [line]))
        elif "&0x01F2" in stripped.replace(" ", ""):
            items.append(Item("halt", [line]))
        else:
            items.append(Item("insn", [line]))
    program.items = items
    return program
