"""Lockstep differential execution: superblock mode vs. ``step()``.

A :class:`FuzzProgram` is assembled, linked at its code base and loaded
into two identical machines — one with the superblock engine enabled
(the production configuration), one forced through the exact
per-instruction interpreter (``block_mode = False``).  Both run in
lockstep chunks; at every chunk boundary (a *divergence checkpoint*)
the full architectural state is compared bit for bit:

* all sixteen registers,
* the cycle and retired-instruction counters,
* the halted flag,
* the complete 64 KB memory image,
* every MPU register plus the latched violation record,
* and, when a run ends, the fault record (kind, PC, address, detail)
  or budget-exhaustion report.

Any difference is a simulator bug by definition — PR 1/2's fast paths
promise bit-identical architectural behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.asm.assembler import assemble
from repro.asm.linker import Linker, LinkScript
from repro.errors import ReproError
from repro.fuzz.generator import (
    CODE_BASE,
    CODE_LIMIT,
    FuzzProgram,
    SCRATCH_HI,
    SCRATCH_LO,
)
from repro.msp430.cpu import Cpu, CpuFault, ExecutionLimitExceeded
from repro.msp430.memory import Memory, MemoryMap
from repro.msp430.mpu import MPU_PASSWORD, Mpu
from repro.ports import DONE_PORT

import random


class FuzzHarnessError(ReproError):
    """The generated program could not be assembled or linked."""


def build_image(program: FuzzProgram):
    """Assemble + link the program text at :data:`CODE_BASE`."""
    try:
        obj = assemble(program.body_text(), name=f"fuzz_{program.seed}")
        script = LinkScript()
        script.region("fuzzcode", CODE_BASE, CODE_LIMIT)
        script.place_rule(".text", "fuzzcode")
        script.place_rule("*", "fuzzcode")
        return Linker(script).place([obj]).resolve()
    except ReproError as error:
        raise FuzzHarnessError(
            f"seed {program.seed}: {error}") from error


class FuzzMachine:
    """One bare CPU + bus + MPU instance running a fuzz program."""

    def __init__(self, program: FuzzProgram, image, step_only: bool):
        self.memory = Memory()
        self.mpu = Mpu()
        self.mpu.attach(self.memory)
        self.cpu = Cpu(self.memory)
        self.cpu.block_mode = not step_only
        self.memory.add_io(DONE_PORT,
                           write=lambda _a, _v: self.cpu.halt())
        # deterministic prefill: scratch FRAM and the SRAM stack area
        rnd = random.Random(program.mem_seed)
        self.memory.load(SCRATCH_LO,
                         rnd.randbytes(SCRATCH_HI - SCRATCH_LO))
        self.memory.load(MemoryMap.SRAM_START,
                         rnd.randbytes(MemoryMap.SRAM_END + 1
                                       - MemoryMap.SRAM_START))
        image.load_into(self.memory)
        # initial MPU configuration: boundaries and permissions first,
        # control (which may enable and lock) last — the order a driver
        # would use
        self.mpu._write_segb1(0, program.mpu_segb1)
        self.mpu._write_segb2(0, program.mpu_segb2)
        self.mpu._write_sam(0, program.mpu_sam)
        self.mpu._write_ctl0(0, (MPU_PASSWORD << 8)
                             | (program.mpu_ctl0 & 0x13))
        regs = self.cpu.regs
        regs.sp = program.sp
        for n, value in program.regs.items():
            regs.write(n, value)
        regs.pc = CODE_BASE

    def snapshot(self) -> tuple:
        """Everything architectural, as one comparable value."""
        cpu, mpu = self.cpu, self.mpu
        return (
            tuple(cpu.regs._regs),
            cpu.cycles,
            cpu.instructions,
            cpu.halted,
            (mpu.ctl0, mpu.ctl1, mpu.segb1, mpu.segb2, mpu.sam,
             mpu.violation_address, mpu.violation_kind),
        )

    def advance(self, max_instructions: int) -> tuple:
        """Run up to ``max_instructions`` more instructions.

        Returns an outcome tuple: ``("halted",)``, ``("running",)``
        (chunk budget reached, more to do), or
        ``("fault", kind, pc, address, detail)``.
        """
        try:
            self.cpu.run(max_cycles=1 << 60,
                         max_instructions=max_instructions)
            return ("halted",)
        except ExecutionLimitExceeded:
            return ("running",)
        except CpuFault as fault:
            return ("fault", fault.kind.name, fault.pc, fault.address,
                    fault.detail)


_SNAPSHOT_FIELDS = ("registers", "cycles", "instructions", "halted",
                    "mpu")


@dataclass
class Divergence:
    checkpoint: int
    field: str
    block_value: object
    step_value: object

    def describe(self) -> str:
        return (f"checkpoint {self.checkpoint}: {self.field} differs — "
                f"block={self.block_value!r} step={self.step_value!r}")


@dataclass
class DiffResult:
    """Outcome of one differential execution."""

    seed: int
    ok: bool
    outcome: tuple                      # final outcome of the block run
    checkpoints: int
    instructions: int
    divergence: Optional[Divergence] = None

    def describe(self) -> str:
        if self.ok:
            return (f"seed {self.seed}: OK ({self.instructions} insns, "
                    f"{self.checkpoints} checkpoints, "
                    f"end={self.outcome[0]})")
        detail = (self.divergence.describe() if self.divergence
                  else "(no detail)")
        return f"seed {self.seed}: DIVERGENCE — {detail}"


def _compare(block: FuzzMachine, step: FuzzMachine,
             checkpoint: int) -> Optional[Divergence]:
    snap_a, snap_b = block.snapshot(), step.snapshot()
    for name, a, b in zip(_SNAPSHOT_FIELDS, snap_a, snap_b):
        if a != b:
            return Divergence(checkpoint, name, a, b)
    if block.memory._bytes != step.memory._bytes:
        address = next(i for i in range(0x10000)
                       if block.memory._bytes[i] != step.memory._bytes[i])
        return Divergence(
            checkpoint, "memory",
            f"[0x{address:04X}]=0x{block.memory._bytes[address]:02X}",
            f"[0x{address:04X}]=0x{step.memory._bytes[address]:02X}")
    return None


def run_differential(program: FuzzProgram, chunk: int = 256,
                     max_instructions: int = 20_000) -> DiffResult:
    """Execute ``program`` in both modes, comparing at every
    checkpoint.  ``chunk`` is the checkpoint spacing in instructions;
    ``max_instructions`` the total budget per run (the backstop for
    programs that fuzz themselves into an endless shape)."""
    image = build_image(program)
    block = FuzzMachine(program, image, step_only=False)
    step = FuzzMachine(program, image, step_only=True)

    checkpoint = 0
    outcome_a: tuple = ("running",)
    while True:
        checkpoint += 1
        outcome_a = block.advance(chunk)
        outcome_b = step.advance(chunk)
        if outcome_a != outcome_b:
            return DiffResult(
                program.seed, ok=False, outcome=outcome_a,
                checkpoints=checkpoint,
                instructions=block.cpu.instructions,
                divergence=Divergence(checkpoint, "outcome",
                                      outcome_a, outcome_b))
        divergence = _compare(block, step, checkpoint)
        if divergence is not None:
            return DiffResult(
                program.seed, ok=False, outcome=outcome_a,
                checkpoints=checkpoint,
                instructions=block.cpu.instructions,
                divergence=divergence)
        if outcome_a[0] != "running":
            break
        if block.cpu.instructions >= max_instructions:
            outcome_a = ("budget",)
            break
    return DiffResult(program.seed, ok=True, outcome=outcome_a,
                      checkpoints=checkpoint,
                      instructions=block.cpu.instructions)
