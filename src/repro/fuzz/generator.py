"""Seeded random MSP430 program generator.

Programs are emitted as assembler text (the same dialect the MiniC
compiler emits), so a failing case shrinks to a human-readable,
replayable ``.s`` file.  The generator favours the shapes that stress
the simulator's fast paths:

* straight ALU runs (superblock *pure* flavour) and tight counted
  loops (the *self-loop* flavour),
* loads/stores through absolute, indexed, indirect and autoincrement
  operands, **biased toward region and MPU-segment boundaries**
  (FRAM start, B1, B2, SRAM/InfoMem edges, the unmapped holes, the
  vector table) where one-byte-off permission bugs live,
* mid-run MPU register writes — with valid and invalid passwords,
  through both statically visible absolute operands (which terminate
  superblocks) and dynamically computed indirect pointers (which do
  not, exercising in-block permission revalidation),
* stores into the program's own code bytes (icache/superblock
  invalidation), call/ret/push/pop traffic, and forward branches.

Every program is self-terminating by construction (loops count down a
reserved register, branches only jump forward to anchor labels, the
body ends by writing the DONE port); the execution budget is only a
backstop for programs that fuzz their own code into an endless shape —
which both execution modes must then report identically.

Structure: a program is a list of *items*.  Each item is an atomic
group of assembly lines (a loop, a pointer setup plus its dereference,
one plain instruction...).  Anchor labels between items are their own
never-removed items, so the shrinker can drop any removable item
without dangling a branch target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.msp430.memory import MemoryMap
from repro.msp430.mpu import MPUCTL0, MPUCTL1, MPUSAM, MPUSEGB1, MPUSEGB2
from repro.ports import DONE_PORT

#: where the generated .text is linked
CODE_BASE = 0x6000
#: upper bound of the code region (programs are far smaller)
CODE_LIMIT = 0x7800
#: FRAM scratch the program freely reads/writes (prefilled per seed)
SCRATCH_LO = 0x9000
SCRATCH_HI = 0x9800

#: reserved loop-counter register — never a destination elsewhere,
#: so counted loops always terminate
LOOP_REG = 15

_ALU_OPS = ("MOV", "ADD", "ADDC", "SUB", "SUBC", "CMP", "BIT",
            "AND", "XOR", "BIS", "BIC", "DADD")
_FMT2_OPS = ("RRA", "RRC", "SWPB", "SXT")
_JCC = ("JNE", "JEQ", "JNC", "JC", "JN", "JGE", "JL", "JMP")

_MPU_REGS = (MPUCTL0, MPUCTL1, MPUSEGB1, MPUSEGB2, MPUSAM)


@dataclass
class Item:
    """One atomic group of assembly lines."""

    kind: str                 # "insn" | "anchor" | "halt" | "sub"
    lines: List[str]

    @property
    def removable(self) -> bool:
        return self.kind in ("insn", "sub")


@dataclass
class FuzzProgram:
    """A generated program plus the initial machine state it assumes."""

    seed: int
    regs: Dict[int, int] = field(default_factory=dict)   # R4..R14
    sp: int = 0x2380
    #: raw initial MPU register values, installed before the first
    #: instruction (segb1/segb2/sam first, ctl0 — which may lock — last)
    mpu_segb1: int = 0
    mpu_segb2: int = 0
    mpu_sam: int = 0xFFFF
    mpu_ctl0: int = 0          # low bits only: MPUENA | MPULOCK | MPUSEGIE
    mem_seed: int = 0          # scratch/SRAM prefill seed
    items: List[Item] = field(default_factory=list)

    def body_text(self) -> str:
        lines = ["    .text"]
        for item in self.items:
            lines.extend(item.lines)
        return "\n".join(lines) + "\n"

    def metadata(self) -> List[Tuple[str, int]]:
        pairs = [("seed", self.seed), ("sp", self.sp),
                 ("mem-seed", self.mem_seed),
                 ("mpu-segb1", self.mpu_segb1),
                 ("mpu-segb2", self.mpu_segb2),
                 ("mpu-sam", self.mpu_sam),
                 ("mpu-ctl0", self.mpu_ctl0)]
        for n in sorted(self.regs):
            pairs.append((f"r{n}", self.regs[n]))
        return pairs


def _interesting_addresses(b1: int, b2: int) -> List[int]:
    """Addresses where permission bugs live: every region and MPU
    boundary, plus or minus a little."""
    m = MemoryMap
    anchors = [
        m.FRAM_START, m.FRAM_END, m.VECTORS_START, m.VECTORS_END,
        m.SRAM_START, m.SRAM_END, m.INFOMEM_START, m.INFOMEM_END,
        m.HOLE1_START, m.HOLE2_START, m.HOLE2_END,
        m.BSL_START, m.DEVDESC_START,
        b1, b2, CODE_BASE, SCRATCH_LO, SCRATCH_HI,
    ]
    out = []
    for a in anchors:
        for off in (-16, -2, -1, 0, 1, 2, 16):
            out.append((a + off) & 0xFFFF)
    return out


class _Generator:
    def __init__(self, seed: int):
        self.rnd = random.Random(seed)
        self.seed = seed
        self.label_counter = 0
        self.sub_count = 0

    # -- helpers ----------------------------------------------------------
    def _reg(self) -> str:
        return f"R{self.rnd.randint(4, 14)}"

    def _imm(self) -> int:
        rnd = self.rnd
        if rnd.random() < 0.4:
            # constant-generator values and small numbers dominate
            return rnd.choice((0, 1, 2, 4, 8, 0xFF, 0xFFFF, 0x8000))
        return rnd.randrange(0x10000)

    def _suffix(self) -> str:
        return ".B" if self.rnd.random() < 0.2 else ""

    def _address(self) -> int:
        rnd = self.rnd
        roll = rnd.random()
        if roll < 0.55:                      # safe scratch
            return SCRATCH_LO + rnd.randrange(SCRATCH_HI - SCRATCH_LO)
        if roll < 0.85:                      # boundary-biased
            return rnd.choice(self.interesting)
        return rnd.randrange(0x10000)        # anywhere

    # -- item emitters ----------------------------------------------------
    def _alu_reg(self) -> List[str]:
        rnd = self.rnd
        op = rnd.choice(_ALU_OPS)
        suffix = self._suffix()
        if rnd.random() < 0.5:
            src = f"#{self._imm()}"
        else:
            src = self._reg()
        return [f"    {op}{suffix} {src}, {self._reg()}"]

    def _fmt2_reg(self) -> List[str]:
        op = self.rnd.choice(_FMT2_OPS)
        suffix = self._suffix() if op in ("RRA", "RRC") else ""
        return [f"    {op}{suffix} {self._reg()}"]

    def _load(self) -> List[str]:
        rnd = self.rnd
        address = self._address()
        dst = self._reg()
        suffix = self._suffix()
        mode = rnd.randrange(4)
        if mode == 0:
            return [f"    MOV{suffix} &0x{address:04X}, {dst}"]
        pointer = self._reg()
        setup = f"    MOV #0x{address:04X}, {pointer}"
        if mode == 1:
            return [setup, f"    MOV{suffix} @{pointer}, {dst}"]
        if mode == 2:
            return [setup, f"    MOV{suffix} @{pointer}+, {dst}"]
        offset = rnd.choice((0, 2, 4, 16))
        base = (address - offset) & 0xFFFF
        return [f"    MOV #0x{base:04X}, {pointer}",
                f"    MOV{suffix} {offset}({pointer}), {dst}"]

    def _store(self) -> List[str]:
        rnd = self.rnd
        address = self._address()
        suffix = self._suffix()
        value = f"#{self._imm()}" if rnd.random() < 0.5 else self._reg()
        mode = rnd.randrange(4)
        if mode == 0:
            return [f"    MOV{suffix} {value}, &0x{address:04X}"]
        pointer = self._reg()
        if mode == 1:
            return [f"    MOV #0x{address:04X}, {pointer}",
                    f"    MOV{suffix} {value}, 0({pointer})"]
        if mode == 2:
            offset = rnd.choice((0, 2, 4, 16))
            base = (address - offset) & 0xFFFF
            return [f"    MOV #0x{base:04X}, {pointer}",
                    f"    MOV{suffix} {value}, {offset}({pointer})"]
        # read-modify-write: ADD into memory (the specialized
        # _spec_add_to_mem thunk)
        return [f"    MOV #0x{address:04X}, {pointer}",
                f"    ADD {value}, 0({pointer})"]

    def _push_pop(self) -> List[str]:
        rnd = self.rnd
        roll = rnd.random()
        if roll < 0.6:                        # balanced pair
            src = f"#{self._imm()}" if rnd.random() < 0.5 else self._reg()
            return [f"    PUSH {src}", f"    POP {self._reg()}"]
        if roll < 0.8:
            return [f"    PUSH {self._reg()}"]
        return [f"    POP {self._reg()}"]

    def _loop(self) -> List[str]:
        """Counted loop on the reserved register: the superblock
        engine compiles the body into a self-loop block."""
        rnd = self.rnd
        label = f"L{self.label_counter}"
        self.label_counter += 1
        count = rnd.randint(1, 20)
        lines = [f"    MOV #{count}, R{LOOP_REG}", f"{label}:"]
        for _ in range(rnd.randint(1, 3)):
            lines.extend(self._alu_reg())
        lines.append(f"    DEC R{LOOP_REG}")
        lines.append(f"    JNE {label}")
        return lines

    def _mpu_write(self) -> List[str]:
        rnd = self.rnd
        register = rnd.choice(_MPU_REGS)
        if register == MPUCTL0:
            password = 0xA5 if rnd.random() < 0.8 else rnd.randrange(0x100)
            bits = rnd.choice((0x0000, 0x0001, 0x0003, 0x0011, 0x0001))
            value = (password << 8) | bits
        elif register in (MPUSEGB1, MPUSEGB2):
            value = rnd.choice((
                0x0440, 0x0600, 0x0680, 0x0780, 0x0900, 0x0950,
                0x0FF8, 0x1000,          # 0x1000 << 4 == 0x10000: clamp
                rnd.randrange(0x10000),
            ))
        elif register == MPUSAM:
            value = rnd.randrange(0x10000)
        else:                                 # MPUCTL1: clear flags
            value = rnd.choice((0x0000, 0xFFFF))
        if rnd.random() < 0.5:
            # statically visible: terminates a superblock
            return [f"    MOV #0x{value:04X}, &0x{register:04X}"]
        # dynamically computed: executes *inside* a memory block
        pointer = self._reg()
        return [f"    MOV #0x{register:04X}, {pointer}",
                f"    MOV #0x{value:04X}, 0({pointer})"]

    def _selfmod(self) -> List[str]:
        """Store into the program's own code bytes (icache and
        superblock invalidation; may fuzz instructions into garbage —
        both modes must then fault identically)."""
        rnd = self.rnd
        offset = rnd.randrange(0, 0x400) & ~1
        value = rnd.randrange(0x10000) if rnd.random() < 0.5 \
            else 0x4303                        # NOP encoding
        return [f"    MOV #0x{value:04X}, &0x{CODE_BASE + offset:04X}"]

    def _call(self) -> List[str]:
        if self.sub_count == 0:
            return self._alu_reg()
        sub = self.rnd.randrange(self.sub_count)
        return [f"    CALL #sub_{sub}"]

    def _jump_forward(self, anchor: str) -> List[str]:
        return [f"    {self.rnd.choice(_JCC)} {anchor}"]

    def _subroutine(self, index: int) -> List[str]:
        rnd = self.rnd
        lines = [f"sub_{index}:"]
        if rnd.random() < 0.5:
            reg = self._reg()
            lines.append(f"    PUSH {reg}")
            for _ in range(rnd.randint(1, 3)):
                lines.extend(self._alu_reg())
            lines.append(f"    POP {reg}")
        else:
            for _ in range(rnd.randint(1, 4)):
                lines.extend(self._alu_reg())
        lines.append("    RET")
        return lines

    # -- driver -----------------------------------------------------------
    def generate(self) -> FuzzProgram:
        rnd = self.rnd
        program = FuzzProgram(seed=self.seed)
        program.mem_seed = rnd.randrange(1 << 30)
        program.sp = rnd.randrange(0x2100, 0x23F0) & ~1
        program.regs = {n: rnd.randrange(0x10000) for n in range(4, 15)}
        program.regs[LOOP_REG] = 0

        # Initial MPU configuration.  Biased permissive so programs
        # usually get to run (a config that denies execute over the
        # code region faults on the first fetch — a legal but short
        # case); restrictive configs still appear.
        roll = rnd.random()
        if roll < 0.35:                       # disabled
            program.mpu_ctl0 = 0
            program.mpu_sam = 0xFFFF
        elif roll < 0.75:                     # enabled, code executable
            program.mpu_segb1 = rnd.choice((0x0440, 0x0600, 0x0780))
            program.mpu_segb2 = rnd.choice((0x0900, 0x0980, 0x0FF8,
                                            0x1000))
            program.mpu_sam = 0x0777 | (rnd.randrange(0x10000) & 0xF000)
            program.mpu_ctl0 = 0x0001
        else:                                 # fully random
            program.mpu_segb1 = rnd.randrange(0x10000)
            program.mpu_segb2 = rnd.randrange(0x10000)
            program.mpu_sam = rnd.randrange(0x10000)
            program.mpu_ctl0 = rnd.choice((0x0000, 0x0001, 0x0003))
        self.interesting = _interesting_addresses(
            (program.mpu_segb1 << 4) & 0xFFFF,
            (program.mpu_segb2 << 4) & 0xFFFF)

        self.sub_count = rnd.randint(0, 2)
        n_items = rnd.randint(8, 48)
        emitters = (
            (self._alu_reg, 30), (self._fmt2_reg, 6), (self._load, 14),
            (self._store, 14), (self._push_pop, 8), (self._loop, 8),
            (self._mpu_write, 8), (self._selfmod, 3), (self._call, 5),
        )
        population = [fn for fn, weight in emitters for _ in range(weight)]

        items: List[Item] = []
        for index in range(n_items):
            anchor = f"A{index}"
            if rnd.random() < 0.12:
                # forward branch to a later anchor (they always exist:
                # one per item plus the final one before HALT)
                target = min(index + rnd.randint(1, 4), n_items)
                items.append(Item("insn",
                                  self._jump_forward(f"A{target}")))
            else:
                items.append(Item("insn", rnd.choice(population)()))
            items.append(Item("anchor", [f"{anchor}:"]))
        items.append(Item("anchor", [f"A{n_items}:"]))
        items.append(Item("halt",
                          [f"    MOV #1, &0x{DONE_PORT:04X}"]))
        for index in range(self.sub_count):
            items.append(Item("sub", self._subroutine(index)))
        program.items = items
        return program


def generate_program(seed: int) -> FuzzProgram:
    """Deterministically generate the program for ``seed``."""
    return _Generator(seed).generate()
