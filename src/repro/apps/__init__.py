"""The application suite: the nine Amulet apps from Figure 2 plus the
three benchmark apps from section 4.2, as MiniC sources with event-rate
manifests."""

from repro.apps.catalog import (
    app_source,
    load_suite,
    load_benchmarks,
    SUITE_NAMES,
    BENCHMARK_NAMES,
)
from repro.apps.manifests import AppManifest, MANIFESTS, manifest_for

__all__ = [
    "app_source", "load_suite", "load_benchmarks",
    "SUITE_NAMES", "BENCHMARK_NAMES",
    "AppManifest", "MANIFESTS", "manifest_for",
]
