"""Loading helpers for the application suite."""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.aft.phases import AppSource
from repro.apps.manifests import BENCHMARK_HANDLERS, MANIFESTS

_SOURCES_DIR = Path(__file__).parent / "sources"

SUITE_NAMES = tuple(sorted(MANIFESTS))
BENCHMARK_NAMES = tuple(sorted(BENCHMARK_HANDLERS))


@lru_cache(maxsize=None)
def app_source(name: str) -> str:
    """Raw MiniC source text for a named app (read once per process)."""
    path = _SOURCES_DIR / f"{name}.mc"
    if not path.exists():
        raise FileNotFoundError(f"no app source {name!r} in "
                                f"{_SOURCES_DIR}")
    return path.read_text()


def load_app(name: str) -> AppSource:
    """One suite app as an AFT-ready AppSource."""
    if name in MANIFESTS:
        return AppSource(name, app_source(name),
                         handlers=list(MANIFESTS[name].handlers))
    if name in BENCHMARK_HANDLERS:
        return AppSource(name, app_source(name),
                         handlers=list(BENCHMARK_HANDLERS[name]))
    raise KeyError(f"unknown app {name!r}")


def load_suite(names: Optional[Sequence[str]] = None) -> List[AppSource]:
    """The nine Figure-2 apps (or a subset)."""
    chosen = names if names is not None else SUITE_NAMES
    return [load_app(name) for name in chosen]


def load_benchmarks(names: Optional[Sequence[str]] = None
                    ) -> List[AppSource]:
    """The section-4.2 benchmark apps (or a subset)."""
    chosen = names if names is not None else BENCHMARK_NAMES
    return [load_app(name) for name in chosen]
