"""Per-app event-rate manifests.

Figure 2's methodology (paper section 4.1): *"we can account for the
rate of environmental, user, and timer events set by the developer,
combine this information with the counted number of memory accesses
and context switches, and extrapolate the number of cycles of overhead
for isolating applications"* — over a week.

Event rates below follow the apps' described behaviour: accelerometer
apps sample at 10-32 Hz, heart-rate apps at 1 Hz, ambient sensors far
slower; display/maintenance handlers tick at seconds-to-minutes rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.kernel.events import EventType, PeriodicSource

MS_PER_WEEK = 7 * 24 * 60 * 60 * 1000


@dataclass(frozen=True)
class HandlerRate:
    handler: str
    event_type: EventType
    period_ms: int

    @property
    def events_per_week(self) -> int:
        return MS_PER_WEEK // self.period_ms


@dataclass(frozen=True)
class AppManifest:
    name: str
    display_name: str
    rates: Tuple[HandlerRate, ...]
    description: str = ""

    @property
    def handlers(self) -> List[str]:
        return [rate.handler for rate in self.rates]

    def sources_for(self, app: str) -> List[PeriodicSource]:
        return [
            PeriodicSource(app=app, handler=rate.handler,
                           event_type=rate.event_type,
                           period_ms=rate.period_ms,
                           phase_ms=index + 1)
            for index, rate in enumerate(self.rates)
        ]

    def events_per_week(self) -> Dict[str, int]:
        return {rate.handler: rate.events_per_week
                for rate in self.rates}


def _m(name: str, display: str, description: str,
       *rates: HandlerRate) -> AppManifest:
    return AppManifest(name, display, tuple(rates), description)


MANIFESTS: Dict[str, AppManifest] = {
    manifest.name: manifest for manifest in [
        _m("batterymeter", "BatteryMeter",
           "battery level smoothing + low-battery alarm",
           HandlerRate("on_battery", EventType.BATTERY, 5 * 60 * 1000),
           HandlerRate("on_minute", EventType.TIMER, 60 * 1000)),
        _m("clock", "Clock",
           "watch face",
           HandlerRate("on_second", EventType.CLOCK_TICK, 1000)),
        _m("falldetection", "FallDetection",
           "impact + stillness detection at 32 Hz",
           HandlerRate("on_accel", EventType.ACCEL_SAMPLE, 31),
           HandlerRate("on_status", EventType.TIMER, 60 * 1000)),
        _m("hr", "HR",
           "heart-rate zones, 1 Hz sampling",
           HandlerRate("on_hr_sample", EventType.HR_SAMPLE, 1000),
           HandlerRate("on_display", EventType.TIMER, 5000)),
        _m("hrlog", "HR Log",
           "heart-rate study logger",
           HandlerRate("on_hr_sample", EventType.HR_SAMPLE, 1000),
           HandlerRate("on_flush", EventType.TIMER, 60 * 1000)),
        _m("pedometer", "Pedometer",
           "step detection at 20 Hz",
           HandlerRate("on_accel", EventType.ACCEL_SAMPLE, 50),
           HandlerRate("on_minute", EventType.TIMER, 60 * 1000)),
        _m("rest", "Rest",
           "sedentary-time nudges at 10 Hz",
           HandlerRate("on_accel", EventType.ACCEL_SAMPLE, 100),
           HandlerRate("on_minute", EventType.TIMER, 60 * 1000)),
        _m("sun", "Sun",
           "daylight exposure tracking",
           HandlerRate("on_light", EventType.LIGHT_SAMPLE, 5000),
           HandlerRate("on_show", EventType.TIMER, 60 * 1000),
           HandlerRate("on_midnight", EventType.TIMER,
                       24 * 60 * 60 * 1000)),
        _m("temperature", "Temperature",
           "skin temperature smoothing, 0.5 Hz",
           HandlerRate("on_temp", EventType.TEMP_SAMPLE, 2000),
           HandlerRate("on_show", EventType.TIMER, 60 * 1000)),
    ]
}

#: benchmark apps (section 4.2) — driven explicitly, not by rates
BENCHMARK_HANDLERS: Dict[str, List[str]] = {
    "synthetic": ["bench_mem", "bench_mem_read", "bench_nop",
                  "bench_switch", "bench_empty"],
    "activity": ["activity_case1", "activity_case2", "act_init"],
    "quicksort": ["quicksort_run"],
}


def manifest_for(name: str) -> AppManifest:
    return MANIFESTS[name]
