"""Shared exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch toolchain problems without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MemoryAccessError(ReproError):
    """An access fell outside the simulated 64 KB address space or hit a
    region that does not tolerate that kind of access (e.g. writing ROM)."""

    def __init__(self, address: int, kind: str, reason: str = ""):
        self.address = address
        self.kind = kind
        detail = f" ({reason})" if reason else ""
        super().__init__(f"illegal {kind} at 0x{address:04X}{detail}")


class MpuViolationError(ReproError):
    """The MPU denied an access.  Normally converted into a CPU fault and
    handled by the OS; raised directly only when no handler is installed."""

    def __init__(self, address: int, kind: str, segment: int):
        self.address = address
        self.kind = kind
        self.segment = segment
        super().__init__(
            f"MPU violation: {kind} at 0x{address:04X} in segment {segment}"
        )


class DecodeError(ReproError):
    """A word stream could not be decoded into a valid instruction."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad operand combination)."""


class AssemblerError(ReproError):
    """Assembly-source problem; carries the offending line number."""

    def __init__(self, message: str, line: int = 0, source: str = "<asm>"):
        self.line = line
        self.source = source
        super().__init__(f"{source}:{line}: {message}" if line else message)


class LinkError(ReproError):
    """Symbol resolution or placement failed during linking."""


class CompileError(ReproError):
    """MiniC front-end error; carries source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0,
                 source: str = "<minic>"):
        self.line = line
        self.col = col
        self.source = source
        if line:
            super().__init__(f"{source}:{line}:{col}: {message}")
        else:
            super().__init__(message)


class RestrictionError(CompileError):
    """A language feature is forbidden under the selected isolation model
    (e.g. pointers under FeatureLimited, goto everywhere)."""


class InterpreterError(ReproError):
    """The reference interpreter hit an untrapped runtime error."""


class ToolchainError(ReproError):
    """AFT pipeline failure (phase ordering, missing sections, ...)."""


class KernelError(ReproError):
    """AmuletOS runtime misuse (unknown app, bad service id, ...)."""


class AppFault(ReproError):
    """An application triggered an isolation fault at run time.

    Carries enough context for the FAULT handler to log app-specific
    information, as described in paper section 3 ("Memory accesses").
    """

    def __init__(self, app: str, reason: str, address: int = 0, pc: int = 0):
        self.app = app
        self.reason = reason
        self.address = address
        self.pc = pc
        super().__init__(
            f"app {app!r} faulted: {reason} "
            f"(addr=0x{address:04X}, pc=0x{pc:04X})"
        )
