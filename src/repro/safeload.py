"""Non-executing deserialization for wire-crossing payloads.

``pickle.loads`` is an interpreter, not a parser: a GLOBAL or
STACK_GLOBAL opcode resolves any importable callable by name and
REDUCE calls it, so unpickling attacker-supplied bytes is arbitrary
code execution — the exploit runs *during* load, before any shape
check on the result can reject it.

Every payload this codebase ships across a socket or ingests from a
shared file (device checkpoints, ``.sbx`` translation records) is
built from primitive types only — ``dict``, ``list``, ``tuple``,
``str``, ``bytes``, ``int``, ``float``, ``bool``, ``None`` — which
pickle protocol 2+ encodes with dedicated opcodes that never consult
``find_class``.  :func:`safe_loads` exploits that: it drives a
:class:`pickle.Unpickler` whose global resolution and persistent-id
hooks are disabled, so a payload referencing *any* module-level name
(``os.system``, ``builtins.eval``, an innocuous-looking class) raises
:class:`UnsafePayload` instead of resolving it.  Nothing is ever
imported or called on behalf of the payload.

The trade is symmetric: producers must keep serializing primitives
only (``pickle.dumps`` on the dicts the ``state_dict``/block-record
layers already emit), and in exchange consumers may load bytes from
an untrusted peer with no more risk than ``json.loads``.
"""

from __future__ import annotations

import io
import pickle


class UnsafePayload(pickle.UnpicklingError):
    """The payload tried to resolve a global, class, or persistent id
    — something only an attacker-crafted pickle of our primitive-only
    formats would do.  Subclasses :class:`pickle.UnpicklingError`, so
    generic corrupt-payload handling catches it too."""


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        raise UnsafePayload(
            f"payload references global {module}.{name} — primitive-"
            "only formats never do; refusing to resolve it")

    def persistent_load(self, pid):
        raise UnsafePayload(
            "payload uses persistent ids — refusing to resolve them")


def safe_loads(data: bytes):
    """Deserialize a pickle of primitive values; raise
    :class:`UnsafePayload` the moment the payload references anything
    resolvable (and therefore callable)."""
    return _RestrictedUnpickler(io.BytesIO(data)).load()
