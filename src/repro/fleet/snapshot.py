"""Versioned device snapshots.

A snapshot captures everything dynamic about one simulated device at a
dispatch boundary — CPU registers and counters, the full 64 KB memory
image, MPU registers (lock state included), the fault log, OS service
state, and the scheduler's clock/queue/statistics.  Everything
*static* (firmware image, schedules, restart policy) is rebuilt from
the deterministic :class:`~repro.fleet.population.DeviceSpec` instead
of being serialized, which keeps snapshots small (~70 KB) and immune
to toolchain refactors.

The format is versioned so stale checkpoints fail loudly instead of
silently resuming wrong.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import Scheduler

#: bump whenever any layer's ``state_dict`` layout changes
STATE_VERSION = 1


def snapshot_device(machine: AmuletMachine, scheduler: Scheduler,
                    sim_ms: int) -> dict:
    """Snapshot a device paused at ``sim_ms`` (a dispatch boundary)."""
    return {
        "version": STATE_VERSION,
        "sim_ms": sim_ms,
        "machine": machine.state_dict(),
        "scheduler": scheduler.state_dict(),
    }


def restore_device(machine: AmuletMachine, scheduler: Scheduler,
                   snapshot: dict) -> int:
    """Load ``snapshot`` into a freshly built machine + scheduler pair;
    returns the simulated time the device was paused at."""
    version = snapshot.get("version")
    if version != STATE_VERSION:
        raise KernelError(
            f"snapshot version {version!r} != supported {STATE_VERSION}"
            " — discard the checkpoint and rerun")
    machine.load_state(snapshot["machine"])
    scheduler.load_state(snapshot["scheduler"])
    return snapshot["sim_ms"]
