"""Versioned device snapshots with delta-compressed memory.

A snapshot captures everything dynamic about one simulated device at a
dispatch boundary — CPU registers and counters, memory, MPU registers
(lock state included), the fault log, OS service state, and the
scheduler's clock/queue/statistics.  Everything *static* (firmware
image, schedules, restart policy) is rebuilt from the deterministic
:class:`~repro.fleet.population.DeviceSpec` instead of being
serialized, which keeps snapshots immune to toolchain refactors.

Memory is stored as a **delta against the per-firmware base image**
(the pristine post-load prototype every clone starts from, see
:class:`~repro.kernel.machine.AmuletMachine`): only 256-byte pages
that differ from the base are serialized, together with the base
image's sha-256.  A duty-cycled sensor device dirties a few dozen
pages of stack, globals, and OS state out of 256 — checkpoints drop
from ~70 KB to a few KB, which matters when a fleet shard writes one
after every device segment.  Restore verifies the digest, so a
checkpoint can never be silently applied on top of the wrong (or a
rebuilt-and-changed) firmware image.

The format is versioned so stale checkpoints fail loudly instead of
silently resuming wrong.
"""

from __future__ import annotations

import pickle
from typing import Dict

from repro.errors import KernelError, ReproError
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import Scheduler
from repro.msp430.memory import page_delta
from repro.safeload import safe_loads

#: bump whenever any layer's ``state_dict`` layout changes
STATE_VERSION = 2

#: delta granularity; 64 KB of address space = 256 pages
DELTA_PAGE = 256


def memory_delta(image: bytes, base: bytes) -> Dict[int, bytes]:
    """``{page offset: page bytes}`` for every :data:`DELTA_PAGE`-sized
    page of ``image`` that differs from ``base``.  Delegates to the
    hierarchical :func:`repro.msp430.memory.page_delta` scan (chunk
    compare first, pages only inside changed chunks) — same output,
    ~8x cheaper on nearly-identical images."""
    return page_delta(image, base, DELTA_PAGE)


def apply_delta(base: bytes, delta: Dict[int, bytes]) -> bytes:
    """Reconstruct a full image from ``base`` plus changed pages."""
    image = bytearray(base)
    for offset, chunk in delta.items():
        image[offset:offset + len(chunk)] = chunk
    return bytes(image)


def snapshot_device(machine: AmuletMachine, scheduler: Scheduler,
                    sim_ms: int) -> dict:
    """Snapshot a device paused at ``sim_ms`` (a dispatch boundary)."""
    state = machine.state_dict()
    memory = state["memory"]
    state["memory"] = {
        "base_sha": machine.base_sha,
        "delta": memory_delta(memory["bytes"], machine.base_image),
    }
    return {
        "version": STATE_VERSION,
        "sim_ms": sim_ms,
        "machine": state,
        "scheduler": scheduler.state_dict(),
    }


def restore_device(machine: AmuletMachine, scheduler: Scheduler,
                   snapshot: dict) -> int:
    """Load ``snapshot`` into a freshly built machine + scheduler pair;
    returns the simulated time the device was paused at.

    The snapshot is not mutated.  Delta-form memory is expanded against
    this machine's base image after verifying the recorded base digest;
    a full ``{"bytes": ...}`` memory state (tools, tests) is accepted
    as-is.
    """
    version = snapshot.get("version")
    if version != STATE_VERSION:
        raise KernelError(
            f"snapshot version {version!r} != supported {STATE_VERSION}"
            " — discard the checkpoint and rerun")
    state = snapshot["machine"]
    memory = state["memory"]
    if "delta" in memory:
        if memory["base_sha"] != machine.base_sha:
            raise KernelError(
                "snapshot was taken against a different firmware image "
                f"(snapshot base {memory['base_sha'][:12]}…, machine "
                f"base {machine.base_sha[:12]}…) — discard the "
                "checkpoint and rerun")
        state = dict(state)
        state["memory"] = {
            "bytes": apply_delta(machine.base_image, memory["delta"]),
        }
    machine.load_state(state)
    scheduler.load_state(snapshot["scheduler"])
    return snapshot["sim_ms"]


# -- on-disk checkpoint payloads (one file per in-progress device) ---------

def checkpoint_bytes(config_key: str, device_id: int,
                     snapshot: dict) -> bytes:
    """Serialize one device's checkpoint for the executor's async
    writer — stamped with the campaign key and device id so a resume
    can never apply it to the wrong campaign or device."""
    return pickle.dumps({"config_key": config_key,
                         "device": device_id,
                         "snapshot": snapshot},
                        protocol=pickle.HIGHEST_PROTOCOL)


def parse_checkpoint(data: bytes, config_key: str,
                     device_id: int) -> dict:
    """Validate and unwrap a checkpoint written by
    :func:`checkpoint_bytes`; returns the snapshot dict.  A local file
    is always complete (the writer renames it into place atomically),
    so any mismatch here is a wrong-campaign error, not corruption.

    Checkpoints also cross the fleet's socket blob channel, where the
    sender may be anyone who can reach the port — so the payload is
    deserialized with :func:`~repro.safeload.safe_loads`: a pickle
    that references any global (the arbitrary-code-execution vector)
    raises instead of resolving it.  Checkpoint state is primitives
    all the way down, so legitimate payloads are unaffected."""
    saved = safe_loads(data)
    if not isinstance(saved, dict):
        raise ReproError("checkpoint payload is not a mapping")
    if saved.get("config_key") != config_key:
        raise ReproError(
            "checkpoint belongs to a different campaign — use a "
            "fresh --out")
    if saved.get("device") != device_id:
        raise ReproError(
            f"checkpoint is for device {saved.get('device')}, "
            f"expected {device_id}")
    return saved["snapshot"]
