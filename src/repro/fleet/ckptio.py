"""Asynchronous, double-buffered, crash-atomic checkpoint writing.

Fleet workers used to write every checkpoint synchronously: pickle the
snapshot, write it out, ``fsync``-adjacent latency and all, while the
simulation sat idle.  At the default cadence that serialized the
workers behind the disk — the direct cause of the jobs=4 < jobs=2
scaling regression in ``BENCH_fleet.json``.

:class:`AsyncCheckpointWriter` overlaps the two halves instead:

* the **simulating thread** serializes the next snapshot into its own
  buffer (pickling is CPU work that cannot move off-thread cheaply —
  the snapshot aliases live machine state that keeps mutating), then
  hands the finished buffer off and simulates on;
* the **writer thread** flushes the previous buffer: write the bytes
  to a per-process temp file, then :func:`os.replace` it into place.

The hand-off queue holds exactly one buffer, which is what makes this
*double* buffering: at any moment one buffer is being filled and at
most one is being flushed.  When the simulation outruns the disk,
``submit`` blocks until the in-flight flush lands — that blocked time
is recorded as ``stall_s`` and surfaces in the coordinator's profile,
so "checkpoint-bound" shows up as a number instead of a mystery.

Crash atomicity: the rename is the commit point.  A worker killed
before the rename leaves a complete previous checkpoint plus a stale
``.tmp`` file (ignored on resume); killed after, the new checkpoint is
complete.  There is no window in which the checkpoint path holds a
torn file.  The ``crash_after_writes`` / ``crash_before_replace``
knobs let tests die (``os._exit``) at exactly those two points.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from pathlib import Path
from typing import Callable, Optional


class AsyncCheckpointWriter:
    """Background writer with a one-deep hand-off queue.

    The flush destination is pluggable: by default ``submit``'s first
    argument is a :class:`~pathlib.Path` and the flush is the
    tmp-write + ``os.replace`` sequence below, but a ``sink`` callable
    replaces that whole step — the network worker passes a sink that
    sends the payload as a checkpoint frame over its socket, so wire
    shipping gets the same double-buffered overlap (and the same
    ``stall_s``/``flushes``/``bytes_written`` accounting) as local
    disk writes.  With a sink, ``submit``'s first argument is an
    opaque key the sink interprets.

    ``crash_after_writes=N``  — ``os._exit(3)`` right after the Nth
    rename commits (a worker dying between checkpoints).
    ``crash_before_replace=N`` — ``os._exit(3)`` after the Nth temp
    file is fully written but *before* its rename (a worker dying
    mid-checkpoint-write; resume must fall back to write N-1).
    Both knobs apply to the default file sink only.
    """

    def __init__(self, crash_after_writes: int = 0,
                 crash_before_replace: int = 0,
                 sink: Optional[Callable[[object, bytes], None]] = None):
        self._queue: "queue.Queue[Optional[tuple]]" = \
            queue.Queue(maxsize=1)
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self._sink = sink
        self._crash_after = crash_after_writes
        self._crash_before_replace = crash_before_replace
        #: completed flushes (renames that committed)
        self.flushes = 0
        #: seconds the simulating thread spent blocked on a full
        #: hand-off queue (the disk falling behind the simulation)
        self.stall_s = 0.0
        #: payload bytes flushed
        self.bytes_written = 0

    # -- simulating-thread side ------------------------------------------
    def submit(self, key, payload: bytes) -> None:
        """Queue one serialized checkpoint for flushing; blocks only
        while a previous flush is still in flight.  ``key`` is the
        destination :class:`~pathlib.Path` (default sink) or whatever
        the custom ``sink`` expects."""
        self._raise_pending()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="ckpt-writer", daemon=True)
            self._thread.start()
        if self._sink is None:
            key = Path(key)
        start = time.perf_counter()
        self._queue.put((key, payload))
        self.stall_s += time.perf_counter() - start

    def drain(self) -> None:
        """Block until every queued checkpoint has been flushed."""
        self._queue.join()
        self._raise_pending()

    def close(self) -> None:
        """Drain and stop the writer thread."""
        if self._thread is not None:
            self._queue.join()
            self._queue.put(None)
            self._thread.join()
            self._thread = None
        self._raise_pending()

    def __enter__(self) -> "AsyncCheckpointWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    # -- writer-thread side ----------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            key, payload = item
            try:
                self._flush(key, payload)
            except BaseException as error:   # surfaced on next call
                self._error = error
            finally:
                self._queue.task_done()

    def _flush(self, key, payload: bytes) -> None:
        if self._sink is not None:
            self._sink(key, payload)
            self.flushes += 1
            self.bytes_written += len(payload)
            return
        path: Path = key
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(payload)
        if 0 < self._crash_before_replace <= self.flushes + 1:
            os._exit(3)       # die mid-write: temp exists, no rename
        os.replace(tmp, path)
        self.flushes += 1
        self.bytes_written += len(payload)
        if 0 < self._crash_after <= self.flushes:
            os._exit(3)       # die between checkpoints
