"""Fleet telemetry: per-device records and the fleet summary.

Records are plain JSON dicts, one per (device, model), streamed as
JSONL while shards run and folded into a single ``summary.json`` at
campaign end.  Everything here is a pure function of the records, the
records are a pure function of ``(fleet_seed, device_id, model)``, and
the fold sorts by device id — so the summary is byte-identical no
matter how many worker processes produced the records.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.aft.models import IsolationModel
from repro.apps.manifests import MS_PER_WEEK
from repro.fleet.device import DeviceRun
from repro.fleet.population import ROGUE_APP
from repro.profiler.energy import EnergyModel

#: CLI-facing model names (matches ``repro experiments`` naming)
MODELS_BY_KEY: Dict[str, IsolationModel] = {
    "none": IsolationModel.NO_ISOLATION,
    "feature-limited": IsolationModel.FEATURE_LIMITED,
    "software-only": IsolationModel.SOFTWARE_ONLY,
    "mpu": IsolationModel.MPU,
    "advanced-mpu": IsolationModel.ADVANCED_MPU,
}

#: what ``--model all`` expands to (the paper's four evaluated models)
DEFAULT_MODELS = ("none", "feature-limited", "software-only", "mpu")


def device_record(run: DeviceRun, model_key: str) -> dict:
    """One device's telemetry, JSON-plain and fully deterministic."""
    spec = run.spec
    stats = run.scheduler.stats
    cycles = sum(stats.per_app_cycles.values())
    rogue_cycles = stats.per_app_cycles.get(ROGUE_APP, 0)
    rogue_events = stats.per_app_events.get(ROGUE_APP, 0)

    faults_by_origin: Dict[str, int] = {}
    for record in run.machine.fault_log.records:
        key = record.origin.value
        faults_by_origin[key] = faults_by_origin.get(key, 0) + 1

    # projected battery cost of a week at this duty cycle, against
    # this device's actual battery (integer scaling keeps it exact)
    weekly_cycles = (cycles * MS_PER_WEEK // run.sim_ms
                     if run.sim_ms else 0)
    energy = EnergyModel(battery_mah=float(spec.battery_mah))
    battery_pct = energy.battery_impact_percent(weekly_cycles)

    return {
        "device": spec.device_id,
        "model": model_key,
        "apps": list(spec.apps),
        "rogue": spec.rogue,
        "rogue_built": run.rogue_built,
        "battery_mah": spec.battery_mah,
        "sim_ms": run.sim_ms,
        "dispatches": stats.events_delivered,
        "dropped": stats.events_dropped,
        "cycles": cycles,
        "faults": stats.faults,
        "restarts": stats.restarts,
        "cycles_app": cycles - rogue_cycles,
        "dispatches_app": stats.events_delivered - rogue_events,
        "faults_by_app": dict(sorted(stats.per_app_faults.items())),
        "faults_by_origin": dict(sorted(faults_by_origin.items())),
        "battery_week_pct": round(battery_pct, 6),
    }


def record_line(record: dict) -> str:
    """Canonical JSONL encoding (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")) + "\n"


def _percentiles(values: Sequence[float]) -> dict:
    """Nearest-rank percentiles — integer indexing only, so the result
    never depends on float interpolation quirks."""
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: int) -> float:
        return ordered[min(n - 1, max(0, (q * n + 99) // 100 - 1))]

    return {
        "min": ordered[0],
        "p50": rank(50),
        "p90": rank(90),
        "p99": rank(99),
        "max": ordered[-1],
        "mean": round(sum(ordered) / n, 6),
    }


def _model_summary(records: List[dict]) -> dict:
    devices = len(records)
    cycles_app = sum(r["cycles_app"] for r in records)
    dispatches_app = sum(r["dispatches_app"] for r in records)
    rogue = [r for r in records if r["rogue"]]
    rogue_built = [r for r in rogue if r["rogue_built"]]
    rogue_caught = [r for r in rogue_built
                    if r["faults_by_app"].get(ROGUE_APP, 0) > 0]
    # any fault logged against a catalog app means the rogue's damage
    # (or a kernel bug) escaped its sandbox
    collateral = sum(count
                     for r in records
                     for app, count in r["faults_by_app"].items()
                     if app != ROGUE_APP)
    summary = {
        "devices": devices,
        "dispatches": sum(r["dispatches"] for r in records),
        "cycles": sum(r["cycles"] for r in records),
        "faults": sum(r["faults"] for r in records),
        "restarts": sum(r["restarts"] for r in records),
        # per-dispatch cost of the nine-app workload itself, rogue
        # excluded — the cross-model comparable number
        "cycles_per_dispatch": round(cycles_app / dispatches_app, 6)
        if dispatches_app else 0.0,
        "rogue_devices": len(rogue),
        "rogue_rejected_at_build": len(rogue) - len(rogue_built),
        "rogue_faulted": len(rogue_caught),
        "collateral_faults": collateral,
        "rogue_contained": len(rogue_caught) == len(rogue_built)
        and collateral == 0,
        "battery_week_pct": _percentiles(
            [r["battery_week_pct"] for r in records]),
        "device_cycles": _percentiles([r["cycles"] for r in records]),
        "device_dispatches": _percentiles(
            [r["dispatches"] for r in records]),
    }
    return summary


class SummaryFold:
    """Streaming summary fold for the coordinator.

    Per-device records arrive in whatever order the work-stealing
    units finish; the fold ingests them incrementally (deduplicating
    by device id — a record is a pure function of
    ``(seed, device_id, model)``, so duplicates from a resumed unit
    are byte-identical and harmless) and keeps running counts for
    progress reporting.  :meth:`summary` re-sorts by device id before
    computing, so the result is byte-identical to a one-shot
    post-hoc :func:`fleet_summary` over the same records — the
    property the ``--jobs`` invariance tests pin.
    """

    def __init__(self) -> None:
        self._by_model: Dict[str, Dict[int, dict]] = {}

    def add(self, model_key: str, record: dict) -> None:
        self._by_model.setdefault(model_key, {})[record["device"]] = \
            record

    def ingest(self, model_key: str, records: List[dict]) -> None:
        for record in records:
            self.add(model_key, record)

    def count(self, model_key: str) -> int:
        return len(self._by_model.get(model_key, {}))

    def device_ids(self, model_key: str) -> set:
        """Ids of devices already folded for this model (the
        coordinator's 'what is still pending' query)."""
        return set(self._by_model.get(model_key, {}))

    def records(self, model_key: str) -> List[dict]:
        """This model's records, sorted by device id."""
        by_device = self._by_model.get(model_key, {})
        return [by_device[device] for device in sorted(by_device)]

    def summary(self, config: dict) -> dict:
        return fleet_summary(config,
                             {key: self.records(key)
                              for key in self._by_model})


def fleet_summary(config: dict,
                  records_by_model: Dict[str, List[dict]]) -> dict:
    """Fold per-device records into the campaign summary.

    ``records_by_model`` maps model key -> records; order of the input
    lists is irrelevant (they are re-sorted by device id)."""
    models = {}
    for key in sorted(records_by_model):
        records = sorted(records_by_model[key],
                         key=lambda r: r["device"])
        models[key] = _model_summary(records)

    # isolation overhead relative to the no-isolation baseline, on the
    # rogue-free per-dispatch cost (paper Table 1's fleet-level analog)
    base = models.get("none")
    if base and base["cycles_per_dispatch"]:
        for key, model in models.items():
            model["overhead_vs_none_pct"] = round(
                100.0 * (model["cycles_per_dispatch"]
                         / base["cycles_per_dispatch"] - 1.0), 3)

    return {"version": 1, "config": config, "models": models}


def summary_text(summary: dict) -> str:
    """Human-readable digest of a fleet summary."""
    lines = []
    config = summary["config"]
    lines.append(f"fleet seed {config['seed']}: "
                 f"{config['devices']} devices x "
                 f"{config['hours']} h simulated")
    header = (f"{'model':<17}{'disp':>10}{'cyc/disp':>12}"
              f"{'ovh%':>8}{'faults':>8}{'restarts':>9}"
              f"{'rogue':>12}")
    lines.append(header)
    for key, model in summary["models"].items():
        overhead = model.get("overhead_vs_none_pct")
        rogue = (f"{model['rogue_faulted']}/{model['rogue_devices']}"
                 + (" +rej" if model["rogue_rejected_at_build"] else ""))
        lines.append(
            f"{key:<17}{model['dispatches']:>10}"
            f"{model['cycles_per_dispatch']:>12.1f}"
            f"{overhead if overhead is not None else '-':>8}"
            f"{model['faults']:>8}{model['restarts']:>9}"
            f"{rogue:>12}")
    return "\n".join(lines)


def worker_summary(workers: Dict[str, dict]) -> dict:
    """Fold the coordinator's per-worker attribution rows into fleet
    totals for ``coordinator.json`` — how much work and wire traffic
    the socket campaign cost, worker count included so reconnect and
    timeout rates can be read per worker."""
    return {
        "workers": len(workers),
        "units_run": sum(w["units_run"] for w in workers.values()),
        "devices_done": sum(
            w["devices_done"] for w in workers.values()),
        "bytes_to_workers": sum(
            w["bytes_to_worker"] for w in workers.values()),
        "bytes_from_workers": sum(
            w["bytes_from_worker"] for w in workers.values()),
        "reconnects": sum(w["reconnects"] for w in workers.values()),
        "lease_timeouts": sum(
            w["lease_timeouts"] for w in workers.values()),
    }
