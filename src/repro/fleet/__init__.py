"""Fleet simulation: populations of Amulet devices.

The paper's evaluation is one wearable running nine apps; the fleet
layer runs *populations* of them — every device an independently
parameterized Amulet (app subset, sensor-arrival jitter, battery
spread, optionally a rogue app), derived deterministically from a
fleet seed so any device is reconstructible from
``(fleet_seed, device_id)`` alone.

Pieces:

* :mod:`repro.fleet.population` — per-device variation derivation
* :mod:`repro.fleet.device`     — one device's segmented simulation
* :mod:`repro.fleet.snapshot`   — versioned machine+scheduler snapshots
* :mod:`repro.fleet.ckptio`     — async double-buffered checkpoint writer
* :mod:`repro.fleet.executor`   — coordinator/worker campaigns:
  work-stealing unit queue, per-device checkpoint/resume
* :mod:`repro.fleet.net`        — socket dispatch: TCP coordinator,
  remote lease-based workers, content-addressed blob channel
* :mod:`repro.fleet.telemetry`  — per-device records, streaming summary fold

Entry point: ``repro fleet run --devices N --hours H --model M --jobs J``;
add ``--listen HOST:PORT`` and any number of ``repro fleet worker
--connect HOST:PORT`` processes to dispatch the same campaign over
sockets (output is byte-identical either way).
"""

from repro.fleet.device import DeviceRun, simulate_device
from repro.fleet.executor import FleetConfig, run_campaign
from repro.fleet.population import (
    DeviceSpec,
    ROGUE_SOURCE,
    device_spec,
    generate_population,
)
from repro.fleet.snapshot import STATE_VERSION, restore_device, \
    snapshot_device
from repro.fleet.telemetry import MODELS_BY_KEY, fleet_summary

__all__ = [
    "DeviceRun",
    "DeviceSpec",
    "FleetConfig",
    "MODELS_BY_KEY",
    "ROGUE_SOURCE",
    "STATE_VERSION",
    "device_spec",
    "fleet_summary",
    "generate_population",
    "restore_device",
    "run_campaign",
    "simulate_device",
    "snapshot_device",
]
