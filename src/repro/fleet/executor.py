"""Sharded fleet campaigns with checkpoint/resume.

Device ids are partitioned across shards (``device_id % shards``);
each shard runs in its own worker process via
:func:`repro.pool.worker_pool` (the same helper the parallel
experiment runner uses), streams per-device JSONL telemetry, and
writes a pickle checkpoint after every completed device *and* every K
simulated minutes inside a device.  Killing the campaign at any point
loses at most one segment of one device per shard: re-running the same
command finds the newest checkpoints under ``--out`` and resumes.

Determinism contract: every per-device record is a pure function of
``(fleet_seed, device_id, model)``, and the summary fold sorts by
device id — so the final ``summary.json`` is byte-identical for any
``--jobs``, and for any interrupt/resume history.

The output directory is stamped with a config key (campaign identity:
seed, devices, hours, models, shard count, checkpoint cadence); a
rerun with different parameters against the same directory fails
loudly instead of mixing campaigns.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.fleet.device import simulate_device
from repro.fleet.population import device_spec
from repro.fleet.snapshot import STATE_VERSION
from repro.fleet.telemetry import MODELS_BY_KEY, device_record, \
    fleet_summary, record_line
from repro.pool import worker_pool


@dataclass(frozen=True)
class FleetConfig:
    """Campaign identity — everything that determines its results."""

    devices: int
    hours: float
    models: Tuple[str, ...]
    seed: int = 0
    shards: int = 1
    checkpoint_minutes: float = 10.0
    rogue_fraction: float = 0.125

    def __post_init__(self) -> None:
        for key in self.models:
            if key not in MODELS_BY_KEY:
                raise ReproError(
                    f"unknown isolation model {key!r} "
                    f"(choose from {', '.join(MODELS_BY_KEY)})")
        if self.devices < 1 or self.shards < 1:
            raise ReproError("need at least one device and one shard")

    @property
    def sim_ms(self) -> int:
        return int(round(self.hours * 3_600_000))

    @property
    def checkpoint_ms(self) -> int:
        return max(1, int(round(self.checkpoint_minutes * 60_000)))

    def key(self) -> str:
        """Hash of the campaign identity (not of ``--jobs``, which is
        free to differ between the original run and a resume)."""
        text = repr((self.devices, self.hours, tuple(self.models),
                     self.seed, self.shards, self.checkpoint_minutes,
                     self.rogue_fraction, STATE_VERSION))
        return hashlib.sha256(text.encode()).hexdigest()[:16]


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def shard_devices(config: FleetConfig, shard: int) -> List[int]:
    return [device_id for device_id in range(config.devices)
            if device_id % config.shards == shard]


def _shard_paths(out_dir: Path, model_key: str,
                 shard: int) -> Tuple[Path, Path]:
    base = out_dir / "shards" / f"{model_key}-shard{shard:03d}"
    return base.with_suffix(".ckpt"), base.with_suffix(".jsonl")


def run_shard(config_dict: dict, model_key: str, shard: int,
              out_dir: str,
              crash_after_checkpoints: int = 0,
              cache_mode: str = "shared",
              profile_dir: Optional[str] = None) -> Dict[int, dict]:
    """Worker entry point: run (or resume) one shard of one model.

    Returns ``{device_id: record}`` for every device in the shard.
    ``crash_after_checkpoints`` > 0 makes the worker die (``os._exit``)
    after that many checkpoint writes — the kill-and-resume tests use
    it to crash at a deterministic point.  ``cache_mode`` picks the
    execution-cache strategy (results are identical across modes, so
    it is — like ``--jobs`` — not part of the campaign key).
    ``profile_dir`` wraps the shard in cProfile and dumps stats to
    ``<profile_dir>/<model>-shardNNN.prof``."""
    if profile_dir is not None:
        import cProfile
        prof_path = (Path(profile_dir)
                     / f"{model_key}-shard{shard:03d}.prof")
        prof_path.parent.mkdir(parents=True, exist_ok=True)
        profile = cProfile.Profile()
        profile.enable()
        try:
            return _run_shard(config_dict, model_key, shard, out_dir,
                              crash_after_checkpoints, cache_mode)
        finally:
            profile.disable()
            profile.dump_stats(str(prof_path))
    return _run_shard(config_dict, model_key, shard, out_dir,
                      crash_after_checkpoints, cache_mode)


def _run_shard(config_dict: dict, model_key: str, shard: int,
               out_dir: str, crash_after_checkpoints: int,
               cache_mode: str) -> Dict[int, dict]:
    config = FleetConfig(**{**config_dict,
                            "models": tuple(config_dict["models"])})
    model = MODELS_BY_KEY[model_key]
    ckpt_path, stream_path = _shard_paths(Path(out_dir), model_key,
                                          shard)

    completed: Dict[int, dict] = {}
    current: Optional[dict] = None
    if ckpt_path.exists():
        with ckpt_path.open("rb") as fh:
            saved = pickle.load(fh)
        if saved["config_key"] != config.key():
            raise ReproError(
                f"checkpoint {ckpt_path} belongs to a different "
                "campaign — use a fresh --out")
        completed = saved["completed"]
        current = saved["current"]

    def write_ckpt(current_state: Optional[dict]) -> None:
        _atomic_write(ckpt_path, pickle.dumps({
            "config_key": config.key(),
            "completed": completed,
            "current": current_state,
        }))

    # rebuild the telemetry stream from the checkpoint so an interrupt
    # mid-append cannot leave a torn or duplicated line behind
    stream_path.parent.mkdir(parents=True, exist_ok=True)
    with stream_path.open("w") as stream:
        for device_id in sorted(completed):
            stream.write(record_line(completed[device_id]))
        stream.flush()

        checkpoints_written = 0

        def on_checkpoint(sim_ms: int, snapshot: dict,
                          device_id: int) -> None:
            nonlocal checkpoints_written
            write_ckpt({"device": device_id, "snapshot": snapshot})
            checkpoints_written += 1
            if 0 < crash_after_checkpoints <= checkpoints_written:
                os._exit(3)       # simulated hard crash, mid-campaign

        for device_id in shard_devices(config, shard):
            if device_id in completed:
                continue
            spec = device_spec(config.seed, device_id,
                               config.rogue_fraction)
            resume = None
            if current is not None and current["device"] == device_id:
                resume = current["snapshot"]
            current = None
            run = simulate_device(
                spec, model, sim_ms=config.sim_ms,
                checkpoint_every_ms=config.checkpoint_ms,
                on_checkpoint=lambda t, snap, d=device_id:
                on_checkpoint(t, snap, d),
                resume=resume,
                cache_mode=cache_mode)
            completed[device_id] = device_record(run, model_key)
            stream.write(record_line(completed[device_id]))
            stream.flush()
            write_ckpt(None)

    return completed


def run_campaign(config: FleetConfig, out_dir: Path, jobs: int = 1,
                 crash_after_checkpoints: int = 0,
                 report: Optional[Callable[[str], None]] = None,
                 cache_mode: str = "shared",
                 profile_dir: Optional[Path] = None) -> dict:
    """Run (or resume) a whole campaign; returns the summary dict.

    ``cache_mode`` and ``profile_dir`` are execution details — like
    ``jobs``, they never change the results and are free to differ
    between the original run and a resume.

    Layout under ``out_dir``::

        campaign.json          identity stamp (config + key)
        shards/<model>-shardNNN.{ckpt,jsonl}
        devices-<model>.jsonl  merged per-device records (atomic)
        summary.json           fleet summary (atomic, canonical JSON)
    """
    say = report if report is not None else (lambda _line: None)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    stamp_path = out_dir / "campaign.json"
    stamp = {"config": asdict(config), "config_key": config.key(),
             "state_version": STATE_VERSION}
    if stamp_path.exists():
        previous = json.loads(stamp_path.read_text())
        if previous.get("config_key") != config.key():
            raise ReproError(
                f"{out_dir} holds a different campaign "
                f"(key {previous.get('config_key')}, this command is "
                f"{config.key()}) — use a fresh --out")
        say(f"resuming campaign in {out_dir}")
    else:
        _atomic_write(stamp_path,
                      json.dumps(stamp, indent=2,
                                 sort_keys=True).encode())

    config_dict = asdict(config)
    records_by_model: Dict[str, List[dict]] = {}
    for model_key in config.models:
        merged_path = out_dir / f"devices-{model_key}.jsonl"
        if merged_path.exists():
            records = [json.loads(line) for line
                       in merged_path.read_text().splitlines()]
            records_by_model[model_key] = records
            say(f"{model_key}: already complete "
                f"({len(records)} devices)")
            continue

        say(f"{model_key}: {config.devices} devices over "
            f"{min(config.shards, config.devices)} shard(s), "
            f"jobs={jobs}")
        shards = [shard for shard in range(config.shards)
                  if shard_devices(config, shard)]
        try:
            with worker_pool(jobs) as pool:
                futures = [
                    pool.submit(run_shard, config_dict, model_key,
                                shard, str(out_dir),
                                crash_after_checkpoints, cache_mode,
                                str(profile_dir)
                                if profile_dir is not None else None)
                    for shard in shards]
                results = [future.result() for future in futures]
        except Exception as error:
            # a killed worker (BrokenProcessPool) or ReproError —
            # checkpoints are on disk, the same command resumes
            raise ReproError(
                f"fleet shard failed under model {model_key!r}: "
                f"{error} — re-run the same command to resume "
                "from the newest checkpoints") from error

        merged: Dict[int, dict] = {}
        for result in results:
            merged.update(result)
        records = [merged[device_id] for device_id in sorted(merged)]
        _atomic_write(merged_path,
                      "".join(record_line(r) for r in records)
                      .encode())
        records_by_model[model_key] = records

    # only result-determining parameters go into the summary: shard
    # count and checkpoint cadence are execution details, and the
    # summary must be byte-identical across them (campaign.json keeps
    # the full execution config)
    summary = fleet_summary(
        {"devices": config.devices, "hours": config.hours,
         "models": list(config.models), "seed": config.seed,
         "rogue_fraction": config.rogue_fraction},
        records_by_model)
    _atomic_write(out_dir / "summary.json",
                  (json.dumps(summary, indent=2, sort_keys=True)
                   + "\n").encode())
    return summary
