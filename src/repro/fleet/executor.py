"""Coordinator/worker fleet campaigns with work-stealing and resume.

The executor used to split devices statically (``device_id % shards``)
and give each shard one synchronous worker.  Jittered per-device
workloads made the static split straggle — one slow shard pinned the
campaign while finished workers idled — and synchronous checkpoint
writes serialized the rest.  This module replaces that with a
coordinator/worker architecture:

* the **coordinator** chunks the pending devices into many small work
  units and submits them all up front; idle workers pull the next
  unit the moment they finish one (work-stealing — no worker waits on
  another's tail), and the coordinator folds telemetry incrementally
  as unit results arrive (:class:`~repro.fleet.telemetry.SummaryFold`)
  instead of in one post-hoc merge;
* each **worker** runs its unit's devices one by one, writing delta
  checkpoints through a double-buffered async writer thread
  (:class:`~repro.fleet.ckptio.AsyncCheckpointWriter`): the worker
  serializes the next snapshot while the previous one flushes, and
  the rename-into-place commit means a kill mid-write always resumes
  from the last *complete* checkpoint;
* all persistent state is **per-device** — one checkpoint file per
  in-progress device, one record line per completed device — so a
  resume never depends on how work was chunked: kill a ``--jobs 4``
  run, resume it with ``--jobs 1``, and the unit layout may differ
  while every completed device is found and every in-progress device
  picks up from its newest complete checkpoint.

Determinism contract (unchanged): every per-device record is a pure
function of ``(fleet_seed, device_id, model)``, and the summary fold
sorts by device id — so the final ``summary.json`` is byte-identical
for any ``--jobs``, any unit layout, any execution-cache mode, and
any interrupt/resume history.

The output directory is stamped with a config key (campaign identity:
seed, devices, hours, models, checkpoint cadence); a rerun with
different parameters against the same directory fails loudly instead
of mixing campaigns.  ``--jobs``, the cache mode, and profiling are
execution details and free to differ between run and resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.aft.models import IsolationModel
from repro.errors import ReproError
from repro.fleet.ckptio import AsyncCheckpointWriter
from repro.fleet.cohort import CohortStats
from repro.fleet.device import simulate_cohort, simulate_device
from repro.fleet.population import device_spec
from repro.fleet.snapshot import STATE_VERSION, checkpoint_bytes, \
    parse_checkpoint
from repro.fleet.telemetry import MODELS_BY_KEY, SummaryFold, \
    device_record, record_line, worker_summary
from repro.pool import completed as completed_futures
from repro.pool import worker_pool

#: work units the coordinator aims to keep queued per worker — enough
#: spare units that a worker finishing a jittered-light unit steals a
#: fresh one instead of idling, few enough that per-unit overhead
#: (process dispatch, stream open) stays marginal
UNITS_PER_WORKER = 4


@dataclass(frozen=True)
class FleetConfig:
    """Campaign identity — everything that determines its results."""

    devices: int
    hours: float
    models: Tuple[str, ...]
    seed: int = 0
    checkpoint_minutes: float = 10.0
    rogue_fraction: float = 0.125
    #: every device a clone of device 0 (the cohort showcase) — see
    #: :func:`repro.fleet.population.device_spec`
    homogeneous: bool = False

    def __post_init__(self) -> None:
        for key in self.models:
            if key not in MODELS_BY_KEY:
                raise ReproError(
                    f"unknown isolation model {key!r} "
                    f"(choose from {', '.join(MODELS_BY_KEY)})")
        if self.devices < 1:
            raise ReproError("need at least one device")
        if self.hours <= 0:
            raise ReproError(
                f"hours must be positive (got {self.hours})")
        if self.checkpoint_minutes <= 0:
            raise ReproError(
                f"checkpoint_minutes must be positive "
                f"(got {self.checkpoint_minutes})")
        if not 0.0 <= self.rogue_fraction <= 1.0:
            raise ReproError(
                f"rogue_fraction must be within [0, 1] "
                f"(got {self.rogue_fraction})")

    @property
    def sim_ms(self) -> int:
        return int(round(self.hours * 3_600_000))

    @property
    def checkpoint_ms(self) -> int:
        return max(1, int(round(self.checkpoint_minutes * 60_000)))

    def key(self) -> str:
        """Hash of the campaign identity.  ``--jobs`` and the unit
        layout are deliberately absent: chunking is an execution
        detail, so a campaign may be resumed under any worker count."""
        text = repr((self.devices, self.hours, tuple(self.models),
                     self.seed, self.checkpoint_minutes,
                     self.rogue_fraction, self.homogeneous,
                     STATE_VERSION))
        return hashlib.sha256(text.encode()).hexdigest()[:16]


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def plan_units(device_ids: List[int], jobs: int) -> List[List[int]]:
    """Chunk pending devices into many small work units for the
    stealing queue: ~:data:`UNITS_PER_WORKER` units per worker, at
    least one device each, devices in id order within a unit."""
    if not device_ids:
        return []
    target = max(1, jobs) * UNITS_PER_WORKER
    size = max(1, -(-len(device_ids) // target))
    return [device_ids[i:i + size]
            for i in range(0, len(device_ids), size)]


def plan_cohort_units(config: "FleetConfig", model: IsolationModel,
                      device_ids: List[int],
                      jobs: int) -> List[List[int]]:
    """Cohort-aware planning: same-firmware devices land in one unit.

    Lockstep only pays when a unit holds several devices of one
    firmware identity — ``(app subset, rogue built)``, the inputs to
    :func:`repro.fleet.device.build_device_apps` — so devices are
    grouped by that signature and each group is chunked into at most
    ``jobs`` units (big units maximize in-unit lockstep, the per-group
    split keeps every worker fed).  Unit layout is an execution
    detail: results are byte-identical to :func:`plan_units` layouts.
    """
    groups: Dict[tuple, List[int]] = {}
    for device_id in device_ids:
        spec = device_spec(config.seed, device_id,
                           config.rogue_fraction, config.homogeneous)
        rogue_built = (spec.rogue and
                       model is not IsolationModel.FEATURE_LIMITED)
        groups.setdefault((spec.apps, rogue_built),
                          []).append(device_id)
    units: List[List[int]] = []
    for signature in sorted(groups):
        members = groups[signature]
        size = max(1, -(-len(members) // max(1, jobs)))
        units.extend(members[i:i + size]
                     for i in range(0, len(members), size))
    units.sort(key=lambda unit: unit[0])
    return units


def _shards_dir(out_dir: Path) -> Path:
    return Path(out_dir) / "shards"


def _ckpt_path(out_dir: Path, model_key: str, device_id: int) -> Path:
    return _shards_dir(out_dir) / f"{model_key}-dev{device_id:05d}.ckpt"


def _unit_stream_path(out_dir: Path, model_key: str,
                      first_device: int) -> Path:
    return _shards_dir(out_dir) / f"{model_key}-u{first_device:05d}.jsonl"


def _unlink_quiet(path: Path) -> None:
    try:
        path.unlink()
    except FileNotFoundError:
        pass


def _sweep_stale_tmp(out_dir: Path) -> int:
    """Delete ``*.tmp<pid>`` litter a killed writer left behind.

    Both atomic-write paths (the checkpoint writer and the
    coordinator's merge/summary writes) stage through a per-process
    temp file and rename it into place; a kill between write and
    rename strands the temp forever — no later process reuses the
    name (it embeds the dead pid).  Nothing ever reads a ``.tmp``
    file, so sweeping at campaign start (when no writer is active) is
    always safe."""
    count = 0
    for directory in (Path(out_dir), _shards_dir(out_dir)):
        if not directory.is_dir():
            continue
        for path in directory.glob("*.tmp*"):
            _unlink_quiet(path)
            count += 1
    return count


def _cleanup_model_shards(out_dir: Path, model_key: str) -> None:
    """Drop a completed model's shard files: once
    ``devices-<model>.jsonl`` is committed, the per-unit record
    streams are redundant and any leftover per-device checkpoint is
    stale by definition (every device has a record)."""
    shards = _shards_dir(out_dir)
    if not shards.is_dir():
        return
    for path in sorted(shards.glob(f"{model_key}-u*.jsonl")):
        _unlink_quiet(path)
    for path in sorted(shards.glob(f"{model_key}-dev*.ckpt")):
        _unlink_quiet(path)


def scan_completed_records(out_dir: Path,
                           model_key: str) -> Dict[int, dict]:
    """Collect completed per-device records from every unit stream,
    whatever unit layout wrote them.  A line torn by a kill mid-append
    fails to parse and is skipped — its device simply reruns from its
    newest checkpoint; duplicate records (a unit resumed under a
    different layout) collapse by device id and are byte-identical by
    the determinism contract."""
    records: Dict[int, dict] = {}
    shards = _shards_dir(out_dir)
    if not shards.is_dir():
        return records
    for path in sorted(shards.glob(f"{model_key}-u*.jsonl")):
        for line in path.read_text().splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            records[record["device"]] = record
    return records


def run_unit(config_dict: dict, model_key: str,
             device_ids: List[int], out_dir: str,
             crash_after_checkpoints: int = 0,
             crash_before_replace: int = 0,
             cache_mode: str = "shared",
             profile_dir: Optional[str] = None,
             cohort: bool = False,
             crash_after_records: int = 0,
             rejoin: bool = True) -> dict:
    """Worker entry point: run (or resume) one work unit.

    Returns ``{"records": {device_id: record}, "stats": {...}}`` —
    the stats feed the coordinator's profile (checkpoint flush stalls,
    lockstep replay counts, trace-tier hit rates, wall time) so
    "checkpoint-bound" and "queue-bound" show up as numbers.
    ``crash_after_checkpoints`` / ``crash_before_replace`` /
    ``crash_after_records`` are crash-injection hooks (``os._exit``
    after the Nth committed checkpoint, after the Nth checkpoint temp
    write but before its rename, or after the Nth record line was
    flushed but before its checkpoint was unlinked) for the
    kill-and-resume tests.  ``cache_mode``, ``cohort`` and ``rejoin``
    pick execution strategies; like ``--jobs`` they never change
    results.
    """
    if profile_dir is not None:
        import cProfile
        prof_path = (Path(profile_dir)
                     / f"{model_key}-u{device_ids[0]:05d}.prof")
        prof_path.parent.mkdir(parents=True, exist_ok=True)
        profile = cProfile.Profile()
        profile.enable()
        try:
            return _run_unit(config_dict, model_key, device_ids,
                             out_dir, crash_after_checkpoints,
                             crash_before_replace, cache_mode,
                             cohort, crash_after_records, rejoin)
        finally:
            profile.disable()
            profile.dump_stats(str(prof_path))
    return _run_unit(config_dict, model_key, device_ids, out_dir,
                     crash_after_checkpoints, crash_before_replace,
                     cache_mode, cohort, crash_after_records, rejoin)


def _run_unit(config_dict: dict, model_key: str,
              device_ids: List[int], out_dir: str,
              crash_after_checkpoints: int,
              crash_before_replace: int, cache_mode: str,
              cohort: bool, crash_after_records: int,
              rejoin: bool = True) -> dict:
    t_start = time.time()
    config = FleetConfig(**{**config_dict,
                            "models": tuple(config_dict["models"])})
    config_key = config.key()
    model = MODELS_BY_KEY[model_key]
    out = Path(out_dir)
    _shards_dir(out).mkdir(parents=True, exist_ok=True)
    stream_path = _unit_stream_path(out, model_key, device_ids[0])

    records: Dict[int, dict] = {}
    records_written = 0
    cohort_stats = CohortStats()
    writer = AsyncCheckpointWriter(
        crash_after_writes=crash_after_checkpoints,
        crash_before_replace=crash_before_replace)

    def load_resume(device_id: int) -> Optional[dict]:
        ckpt_path = _ckpt_path(out, model_key, device_id)
        if ckpt_path.exists():
            return parse_checkpoint(ckpt_path.read_bytes(),
                                    config_key, device_id)
        return None

    def submit_checkpoint(device_id: int, sim_ms: int,
                          snapshot: dict) -> None:
        # serialize here (this thread), flush over there (the
        # writer thread) — the double-buffer hand-off
        writer.submit(_ckpt_path(out, model_key, device_id),
                      checkpoint_bytes(config_key, device_id,
                                       snapshot))

    def commit_record(stream, device_id: int) -> None:
        # commit order matters: drain pending checkpoint flushes,
        # record the completion, then drop the checkpoint — a kill
        # between any two steps leaves a resumable state (the
        # record-before-unlink window leaves a stale checkpoint the
        # coordinator's resume scan drops)
        nonlocal records_written
        stream.write(record_line(records[device_id]))
        stream.flush()
        records_written += 1
        if 0 < crash_after_records <= records_written:
            os._exit(3)      # die with the checkpoint still on disk
        _unlink_quiet(_ckpt_path(out, model_key, device_id))

    # append mode: a resumed unit adds only devices that were still
    # pending; the coordinator deduplicates by device id on scan
    with stream_path.open("a") as stream, writer:
        if cohort:
            specs = [device_spec(config.seed, device_id,
                                 config.rogue_fraction,
                                 config.homogeneous)
                     for device_id in device_ids]
            resumes = {device_id: resume for device_id in device_ids
                       if (resume := load_resume(device_id))
                       is not None}
            from repro.fleet.tracetier import trace_tier
            runs = simulate_cohort(
                specs, model, sim_ms=config.sim_ms,
                checkpoint_every_ms=config.checkpoint_ms,
                on_checkpoint=submit_checkpoint,
                resumes=resumes, cache_mode=cache_mode,
                stats=cohort_stats, rejoin=rejoin,
                tier=trace_tier())
            writer.drain()
            # records commit only once the whole cohort finished (the
            # devices advance interleaved); a kill mid-unit resumes
            # every member from its newest checkpoint
            for device_id in device_ids:
                records[device_id] = device_record(runs[device_id],
                                                   model_key)
                commit_record(stream, device_id)
        else:
            for device_id in device_ids:
                spec = device_spec(config.seed, device_id,
                                   config.rogue_fraction,
                                   config.homogeneous)
                run = simulate_device(
                    spec, model, sim_ms=config.sim_ms,
                    checkpoint_every_ms=config.checkpoint_ms,
                    on_checkpoint=lambda sim_ms, snapshot,
                    _device=device_id: submit_checkpoint(
                        _device, sim_ms, snapshot),
                    resume=load_resume(device_id),
                    cache_mode=cache_mode)
                records[device_id] = device_record(run, model_key)
                writer.drain()
                commit_record(stream, device_id)
    return {
        "records": records,
        "stats": {
            "devices": list(device_ids),
            "t_start": t_start,
            "t_end": time.time(),
            "ckpt_flushes": writer.flushes,
            "ckpt_stall_s": round(writer.stall_s, 6),
            "ckpt_bytes": writer.bytes_written,
            "cohort_replayed": cohort_stats.replayed,
            "cohort_executed": cohort_stats.executed,
            "cohort_forks": cohort_stats.forks,
            "cohort_rejoins": cohort_stats.rejoins,
            "trace_hits": cohort_stats.trace_hits,
            "trace_misses": cohort_stats.trace_misses,
            "trace_published": cohort_stats.trace_published,
        },
    }


# -- transports -------------------------------------------------------------
#
# The coordinator's scheduling policy (chunk into units, submit all,
# fold in completion order) is transport-agnostic; what varies is
# *where* a unit runs.  A transport owns that: it receives each
# model's planned units and yields ``(devices, t_submit, result)``
# rows in completion order, where ``result`` has exactly the shape
# :func:`run_unit` returns.  ``LocalTransport`` is the in-process
# worker pool this module always had; ``SocketTransport``
# (:mod:`repro.fleet.net.coordinator`) serves the same queue to
# remote ``repro fleet worker`` processes over TCP.  Byte-identity of
# the campaign output across transports is pinned by tests and CI.

class LocalTransport:
    """In-process pool transport: units run via :mod:`repro.pool`
    workers on this host, writing checkpoint/record files directly."""

    kind = "local"

    def __init__(self, jobs: int = 1, crash_after_checkpoints: int = 0,
                 crash_before_replace: int = 0,
                 crash_after_records: int = 0):
        self.jobs = jobs
        self._crash_after = crash_after_checkpoints
        self._crash_before_replace = crash_before_replace
        self._crash_after_records = crash_after_records
        self._campaign: Optional[dict] = None

    def open_campaign(self, campaign: dict) -> None:
        """``campaign`` carries the shared context: ``config_dict``,
        ``config_key``, ``out_dir``, ``cache_mode``, ``cohort``,
        ``profile_dir`` and the ``say`` reporter."""
        self._campaign = campaign

    def run_units(self, model_key: str, units: List[List[int]]):
        campaign = self._campaign
        with worker_pool(self.jobs) as pool:
            submitted = {}
            for unit in units:
                t_submit = time.time()
                future = pool.submit(
                    run_unit, campaign["config_dict"], model_key,
                    unit, campaign["out_dir"], self._crash_after,
                    self._crash_before_replace,
                    campaign["cache_mode"], campaign["profile_dir"],
                    campaign["cohort"], self._crash_after_records,
                    campaign.get("rejoin", True))
                submitted[future] = (unit, t_submit)
            # stream the fold: consume results the moment any worker
            # finishes a unit, in completion order
            for future in completed_futures(submitted):
                unit, t_submit = submitted[future]
                yield unit, t_submit, future.result()

    def worker_stats(self) -> dict:
        return {}

    def close(self) -> None:
        pass


def run_campaign(config: FleetConfig, out_dir: Path, jobs: int = 1,
                 crash_after_checkpoints: int = 0,
                 report: Optional[Callable[[str], None]] = None,
                 cache_mode: str = "shared",
                 profile_dir: Optional[Path] = None,
                 crash_before_replace: int = 0,
                 cohort: bool = False,
                 crash_after_records: int = 0,
                 transport=None, rejoin: bool = True) -> dict:
    """Run (or resume) a whole campaign; returns the summary dict.

    ``jobs``, ``cache_mode``, ``cohort``, ``rejoin``, the transport
    and the profiling/crash knobs are execution details — they never
    change the results and are free to differ between the original
    run and a resume.  ``transport`` defaults to an in-process
    :class:`LocalTransport` pool of ``jobs`` workers; pass a
    :class:`repro.fleet.net.coordinator.SocketTransport` to serve the
    same unit queue to remote ``repro fleet worker`` processes (the
    ``--listen`` path).  ``jobs`` still sizes the work units either
    way.

    Layout under ``out_dir``::

        campaign.json          identity stamp (config + key)
        shards/<model>-uNNNNN.jsonl    unit record streams (append-only)
        shards/<model>-devNNNNN.ckpt   in-progress device checkpoints
        devices-<model>.jsonl  merged per-device records (atomic)
        summary.json           fleet summary (atomic, canonical JSON)
        profiles/              per-unit cProfile dumps and
                               coordinator.json (with ``profile_dir``)

    The shard files are transient: unit streams and checkpoints exist
    only while their model is in flight, and are removed once its
    ``devices-<model>.jsonl`` merge commits.  Stale temp files
    (``*.tmp<pid>``) from killed writers are swept at campaign start.
    """
    say = report if report is not None else (lambda _line: None)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    stamp_path = out_dir / "campaign.json"
    stamp = {"config": asdict(config), "config_key": config.key(),
             "state_version": STATE_VERSION}
    if stamp_path.exists():
        previous = json.loads(stamp_path.read_text())
        if previous.get("config_key") != config.key():
            raise ReproError(
                f"{out_dir} holds a different campaign "
                f"(key {previous.get('config_key')}, this command is "
                f"{config.key()}) — use a fresh --out")
        say(f"resuming campaign in {out_dir}")
    else:
        _atomic_write(stamp_path,
                      json.dumps(stamp, indent=2,
                                 sort_keys=True).encode())
    swept = _sweep_stale_tmp(out_dir)
    if swept:
        say(f"swept {swept} stale temp file(s)")

    config_dict = asdict(config)
    fold = SummaryFold()
    coordinator_profile: Optional[dict] = None
    if profile_dir is not None:
        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)
        coordinator_profile = {"jobs": jobs, "cohort": cohort,
                               "rejoin": rejoin, "models": {}}

    if transport is None:
        transport = LocalTransport(
            jobs, crash_after_checkpoints=crash_after_checkpoints,
            crash_before_replace=crash_before_replace,
            crash_after_records=crash_after_records)
    transport.open_campaign({
        "config_dict": config_dict,
        "config_key": config.key(),
        "out_dir": str(out_dir),
        "cache_mode": cache_mode,
        "cohort": cohort,
        "rejoin": rejoin,
        "profile_dir": str(profile_dir)
        if profile_dir is not None else None,
        "say": say,
    })
    if coordinator_profile is not None:
        coordinator_profile["transport"] = transport.kind

    try:
        _run_models(config, out_dir, jobs, transport, fold,
                    coordinator_profile, cohort, say)
    finally:
        transport.close()

    # only result-determining parameters go into the summary: the
    # worker count, unit layout, and checkpoint cadence are execution
    # details, and the summary must be byte-identical across them
    # (campaign.json keeps the full execution config)
    summary = fold.summary(
        {"devices": config.devices, "hours": config.hours,
         "models": list(config.models), "seed": config.seed,
         "rogue_fraction": config.rogue_fraction,
         "homogeneous": config.homogeneous})
    _atomic_write(out_dir / "summary.json",
                  (json.dumps(summary, indent=2, sort_keys=True)
                   + "\n").encode())
    if coordinator_profile is not None:
        net = transport.worker_stats()
        if net:
            coordinator_profile["workers"] = net["workers"]
            coordinator_profile["requeues"] = net.get("requeues", 0)
            coordinator_profile["worker_totals"] = worker_summary(
                net["workers"])
        _atomic_write(profile_dir / "coordinator.json",
                      (json.dumps(coordinator_profile, indent=2,
                                  sort_keys=True) + "\n").encode())
    return summary


def _run_models(config: FleetConfig, out_dir: Path, jobs: int,
                transport, fold: SummaryFold,
                coordinator_profile: Optional[dict], cohort: bool,
                say: Callable[[str], None]) -> None:
    """Per-model unit planning, dispatch through the transport, and
    incremental folding — the coordinator's inner loop."""
    for model_key in config.models:
        merged_path = out_dir / f"devices-{model_key}.jsonl"
        if merged_path.exists():
            records = [json.loads(line) for line
                       in merged_path.read_text().splitlines()]
            fold.ingest(model_key, records)
            # the merge may have committed right before a kill, with
            # the shard cleanup still pending — finish it now
            _cleanup_model_shards(out_dir, model_key)
            if coordinator_profile is not None:
                coordinator_profile["models"][model_key] = {
                    "resumed": True,
                    "units_run": 0,
                    "devices_resumed": len(records),
                }
            say(f"{model_key}: already complete "
                f"({len(records)} devices)")
            continue

        t_model = time.time()
        for record in scan_completed_records(out_dir,
                                             model_key).values():
            fold.add(model_key, record)
        done = fold.device_ids(model_key)
        # a worker killed after flushing a device's record but before
        # unlinking its checkpoint leaves a stale .ckpt; the record
        # wins, so drop the orphan here rather than carrying it forever
        for device_id in done:
            _unlink_quiet(_ckpt_path(out_dir, model_key, device_id))
        pending = [device_id for device_id in range(config.devices)
                   if device_id not in done]
        if cohort:
            units = plan_cohort_units(config, MODELS_BY_KEY[model_key],
                                      pending, jobs)
        else:
            units = plan_units(pending, jobs)
        say(f"{model_key}: {config.devices} devices "
            f"({len(pending)} pending) over {len(units)} work "
            f"unit(s), jobs={jobs}"
            + (", cohort lockstep" if cohort else ""))

        unit_rows: List[dict] = []
        try:
            # stream the fold: consume results the moment any worker
            # (pool process or socket peer) finishes a unit, in
            # completion order
            for unit, t_submit, result in transport.run_units(
                    model_key, units):
                t_fold = time.time()
                for record in result["records"].values():
                    fold.add(model_key, record)
                stats = result["stats"]
                unit_rows.append({
                    "devices": stats["devices"],
                    "queue_wait_s": round(
                        max(0.0, stats["t_start"] - t_submit), 6),
                    "run_s": round(
                        stats["t_end"] - stats["t_start"], 6),
                    "fold_s": round(time.time() - t_fold, 6),
                    "ckpt_flushes": stats["ckpt_flushes"],
                    "ckpt_stall_s": stats["ckpt_stall_s"],
                    "ckpt_bytes": stats["ckpt_bytes"],
                    "worker": stats.get("worker"),
                    "cohort_replayed": stats.get(
                        "cohort_replayed", 0),
                    "cohort_executed": stats.get(
                        "cohort_executed", 0),
                    "cohort_forks": stats.get("cohort_forks", 0),
                    "cohort_rejoins": stats.get("cohort_rejoins", 0),
                    "trace_hits": stats.get("trace_hits", 0),
                    "trace_misses": stats.get("trace_misses", 0),
                    "trace_published": stats.get(
                        "trace_published", 0),
                })
                say(f"{model_key}: "
                    f"{fold.count(model_key)}/{config.devices} "
                    "devices")
        except Exception as error:
            # a killed worker (BrokenProcessPool), a dropped socket,
            # or a ReproError — completed records and checkpoints are
            # on disk, the same command resumes
            raise ReproError(
                f"fleet worker failed under model {model_key!r}: "
                f"{error} — re-run the same command to resume "
                "from the newest checkpoints") from error

        records = fold.records(model_key)
        _atomic_write(merged_path,
                      "".join(record_line(r) for r in records)
                      .encode())
        # the merged file is now the single source of truth for this
        # model — the unit streams and any checkpoints are garbage
        _cleanup_model_shards(out_dir, model_key)
        if coordinator_profile is not None:
            unit_rows.sort(key=lambda row: row["devices"][0])
            coordinator_profile["models"][model_key] = {
                "resumed": bool(done),
                "devices_resumed": len(done),
                "units_run": len(unit_rows),
                "wall_s": round(time.time() - t_model, 6),
                "units": unit_rows,
                "queue_wait_s": round(sum(
                    row["queue_wait_s"] for row in unit_rows), 6),
                "ckpt_stall_s": round(sum(
                    row["ckpt_stall_s"] for row in unit_rows), 6),
                "ckpt_bytes": sum(
                    row["ckpt_bytes"] for row in unit_rows),
                "cohort_replayed": sum(
                    row["cohort_replayed"] for row in unit_rows),
                "cohort_executed": sum(
                    row["cohort_executed"] for row in unit_rows),
                "cohort_forks": sum(
                    row["cohort_forks"] for row in unit_rows),
                "cohort_rejoins": sum(
                    row["cohort_rejoins"] for row in unit_rows),
                "trace_hits": sum(
                    row["trace_hits"] for row in unit_rows),
                "trace_misses": sum(
                    row["trace_misses"] for row in unit_rows),
                "trace_published": sum(
                    row["trace_published"] for row in unit_rows),
            }
