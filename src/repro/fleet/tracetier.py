"""Persistent cohort trace tier: ``.tbx`` stores of segment traces.

Cohort lockstep (:mod:`repro.fleet.cohort`) records one leader's
dispatch trace per ``(firmware, segment)`` and replays it into
state-identical siblings — but those traces used to die with the work
unit, so every unit, process, and remote worker re-recorded them.
This tier persists them the way the ``.sbx`` exec-cache tier persists
compiled blocks: one append-only, self-checking store file per
firmware image (``.cache/trace/<identity>.tbx``), records
content-addressed by ``(base_sha, segment window, pre-state digest)``,
published once and adopted by every later reader — including remote
fleet workers, via the same sha-verified blob channel that ships
``.sbx`` stores.

Trust model — identical to the exec tier's, one layer up:

* **The local cache dir is trusted** exactly as much as for ``.sbx``
  stores (whoever can write it can already poison compiled code).
  Ingestion is still fail-closed against *corruption*: framing is
  magic/length/digest-checked, payloads are deserialized with the
  restricted :func:`repro.safeload.safe_loads` (a crafted pickle
  raises instead of executing), and a record must pass a full shape
  validation — page offsets in range, register files the right width,
  fault origins that exist — before a follower ever applies it.
* **Adoption is verified by content.**  A trace replays into a device
  only when the device's own :func:`repro.fleet.cohort.state_digest`
  equals the record's ``pre_sha`` (checked per segment *and* per
  rejoin boundary).  A rogue device's published write-sets are inert
  for clean siblings — their digests never match — and byte-identity
  holds with the tier cold, warm, poisoned, or disabled.
* **The wire adds nothing to trust.**  Store files cross the fleet
  only through the existing content-addressed blob channel (sha
  pinned at offer time, verified on receipt, re-scanned frame by
  frame before import).

Knobs mirror the exec tier: ``REPRO_TRACE_CACHE=0`` disables,
``REPRO_TRACE_CACHE_DIR`` relocates, ``REPRO_TRACE_CACHE_MAX_MB``
bounds the LRU budget (``REPRO_NO_CACHE`` still kills everything).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.fleet.cohort import SegmentTrace, TraceEntry
from repro.framestore import AppendStore, FrameFormat, StoreLayout

#: bump when the record payload layout changes
TRACE_FORMAT = 1

#: traces are orders of magnitude bigger than compiled blocks (every
#: dirtied page of every dispatch in a segment); anything claiming to
#: be bigger than this is a corrupt length field — and a legitimate
#: trace past it simply isn't published (fail-soft: re-recorded)
_MAX_RECORD = 1 << 26

#: distinct pre-state variants kept per segment window.  Every
#: distinct device state that leads a segment publishes one variant
#: (a jittered fleet publishes one per phase), so the cap is roomier
#: than the exec tier's per-pc one; past it, new variants just stay
#: process-local.  Bounds what a self-modifying rogue can grow.
MAX_SEGMENT_VARIANTS = 64

_FORMAT = FrameFormat(b"TBX1", _MAX_RECORD, ".tbx")
_LAYOUT = StoreLayout(_FORMAT, "TRACE_CACHE", "trace", default_mb=256)

_ENTRY_SLOTS = TraceEntry.__slots__

_RECORD_KEYS = ("base_sha", "start_ms", "end_ms", "pre_sha",
                "timer_modulus", "entries")


def trace_enabled() -> bool:
    return _LAYOUT.enabled()


def trace_cache_dir() -> Path:
    """``REPRO_TRACE_CACHE_DIR``, else ``<REPRO_CACHE_DIR>/trace``,
    else ``<repo>/.cache/trace`` (sibling of the exec cache)."""
    return _LAYOUT.directory()


def _store_path(base_sha: str) -> Path:
    from repro.aft.cache import toolchain_version  # lazy: avoids cycle
    identity = (TRACE_FORMAT, sys.implementation.cache_tag,
                toolchain_version(), base_sha)
    return trace_cache_dir() / _LAYOUT.store_name(identity)


# -- record (de)serialization ------------------------------------------------

def trace_record(trace: SegmentTrace) -> dict:
    """A :class:`SegmentTrace` as a primitive-only record dict."""
    return {
        "base_sha": trace.base_sha,
        "start_ms": trace.start_ms,
        "end_ms": trace.end_ms,
        "pre_sha": trace.pre_sha,
        "timer_modulus": trace.timer_modulus,
        "entries": [
            {name: getattr(entry, name) for name in _ENTRY_SLOTS}
            for entry in trace.entries],
    }


def _validate_record_shape(record) -> None:
    """Cheap top-level shape check (raise on failure) — applied at
    ingest/scan time to every frame; the expensive per-entry
    validation runs once, at :func:`revive_trace` time."""
    if not isinstance(record, dict):
        raise ValueError("trace record is not a dict")
    for key in _RECORD_KEYS:
        if key not in record:
            raise ValueError(f"trace record lacks {key!r}")
    if not isinstance(record["base_sha"], str) or \
            not isinstance(record["pre_sha"], str):
        raise ValueError("trace identity fields are not strings")
    if not isinstance(record["start_ms"], int) or \
            not isinstance(record["end_ms"], int):
        raise ValueError("trace window fields are not ints")
    modulus = record["timer_modulus"]
    if not isinstance(modulus, int) or modulus <= 0:
        raise ValueError("timer modulus is not a positive int")
    entries = record["entries"]
    if not isinstance(entries, list):
        raise ValueError("trace entries is not a list")


def _revive_entry(data: dict) -> TraceEntry:
    """One entry dict back to a :class:`TraceEntry`, validating every
    field a replay would *apply* — page offsets that stay inside the
    64 KB image, a 16-wide register file, fault origins that exist —
    so a corrupt record is refused here instead of crashing (or
    corrupting) a follower mid-replay."""
    if not isinstance(data, dict):
        raise ValueError("entry is not a dict")
    entry = TraceEntry()
    key = data["key"]
    if not (isinstance(key, tuple) and len(key) == 4
            and isinstance(key[0], str) and isinstance(key[1], str)
            and isinstance(key[2], tuple)
            and isinstance(key[3], tuple) and len(key[3]) == 7):
        raise ValueError("entry key has the wrong shape")
    entry.key = key
    pre_sha = data["pre_sha"]
    if not isinstance(pre_sha, str):
        raise ValueError("entry pre_sha is not a string")
    entry.pre_sha = pre_sha
    cycles_mod = data["cycles_mod"]
    if cycles_mod is not None and not isinstance(cycles_mod, int):
        raise ValueError("cycles_mod is neither None nor an int")
    entry.cycles_mod = cycles_mod
    pages = data["pages"]
    if not isinstance(pages, dict):
        raise ValueError("pages is not a dict")
    for offset, page in pages.items():
        if not (isinstance(offset, int) and isinstance(page, bytes)
                and 0 <= offset and offset + len(page) <= 0x10000):
            raise ValueError("page delta outside the 64 KB image")
    entry.pages = pages
    regs = data["regs_post"]
    if not (isinstance(regs, tuple) and len(regs) == 16
            and all(isinstance(reg, int) for reg in regs)):
        raise ValueError("regs_post is not a 16-int tuple")
    entry.regs_post = regs
    for name in ("cycles_delta", "instructions_delta",
                 "vibrations_delta"):
        value = data[name]
        if not isinstance(value, int):
            raise ValueError(f"{name} is not an int")
        setattr(entry, name, value)
    env_post = data["env_post"]
    if not (isinstance(env_post, tuple) and len(env_post) == 7):
        raise ValueError("env_post is not a 7-tuple")
    entry.env_post = env_post
    mpu_post = data["mpu_post"]
    if mpu_post is not None and not isinstance(mpu_post, dict):
        raise ValueError("mpu_post is neither None nor a dict")
    entry.mpu_post = mpu_post
    faults = data["faults"]
    if not isinstance(faults, tuple):
        raise ValueError("faults is not a tuple")
    from repro.kernel.fault import FaultOrigin
    for fault in faults:
        if not isinstance(fault, dict):
            raise ValueError("fault record is not a dict")
        FaultOrigin(fault["origin"])   # unknown origin raises
        if not isinstance(fault["app"], str) or \
                not isinstance(fault["cycle_delta"], int):
            raise ValueError("fault record has the wrong shape")
    entry.faults = faults
    for name in ("digits", "texts", "log_words", "log_buffers"):
        value = data[name]
        if not isinstance(value, tuple):
            raise ValueError(f"{name} is not a tuple")
        setattr(entry, name, value)
    storage = data["storage_updates"]
    if not isinstance(storage, dict):
        raise ValueError("storage_updates is not a dict")
    entry.storage_updates = storage
    calls = data["calls_delta"]
    if not isinstance(calls, dict):
        raise ValueError("calls_delta is not a dict")
    entry.calls_delta = calls
    timers = data["timers"]
    if not isinstance(timers, tuple) or not all(
            isinstance(armed, tuple) and len(armed) == 3
            and isinstance(armed[0], str)
            and isinstance(armed[1], int) and isinstance(armed[2], int)
            for armed in timers):
        raise ValueError("timers is not a tuple of (app, id, ticks)")
    entry.timers = timers
    return entry


def revive_trace(record: dict) -> Optional[SegmentTrace]:
    """A stored record back to a :class:`SegmentTrace`, or ``None``
    when any entry fails validation (fail-closed: the whole trace is
    refused, the follower just executes)."""
    try:
        _validate_record_shape(record)
        return SegmentTrace(
            base_sha=record["base_sha"],
            start_ms=record["start_ms"], end_ms=record["end_ms"],
            pre_sha=record["pre_sha"],
            timer_modulus=record["timer_modulus"],
            entries=[_revive_entry(data)
                     for data in record["entries"]])
    except Exception:
        return None


# -- the persistent store ----------------------------------------------------

class TraceStore(AppendStore):
    """Append-only ``.tbx`` store for one firmware image's traces,
    indexed by ``(start_ms, end_ms)`` window then pre-state digest.
    Same concurrency model as the exec tier: single ``O_APPEND``
    writes, incremental self-checking reads, content-level dedup."""

    __slots__ = ("_index",)

    def __init__(self, path: Path):
        #: (start_ms, end_ms) -> {pre_sha: raw record dict}
        self._index: Dict[Tuple[int, int], Dict[str, dict]] = {}
        super().__init__(path, _LAYOUT)

    def stats(self) -> dict:
        return {"path": str(self.path), "loaded": self.loaded,
                "published": self.published, "corrupt": self.corrupt,
                "segments": len(self._index)}

    def _accept(self, record) -> bool:
        _validate_record_shape(record)  # wrong shape raises -> corrupt
        window = (record["start_ms"], record["end_ms"])
        variants = self._index.setdefault(window, {})
        pre_sha = record["pre_sha"]
        if pre_sha in variants:
            return False
        if len(variants) >= MAX_SEGMENT_VARIANTS:
            return False               # variant cap, on disk too
        variants[pre_sha] = record
        return True

    def get(self, start_ms: int, end_ms: int, pre_sha: str
            ) -> Optional[SegmentTrace]:
        """The revived trace for one ``(window, pre-state)``, or
        ``None``.  Misses refresh once (cheap ``stat``) to pick up
        traces another process published since."""
        record = self._index.get((start_ms, end_ms), {}).get(pre_sha)
        if record is None and self.refresh():
            record = self._index.get((start_ms, end_ms),
                                     {}).get(pre_sha)
        if record is None:
            return None
        trace = revive_trace(record)
        if trace is None:
            self.corrupt += 1          # passed framing, failed revive
        return trace

    def put(self, trace: SegmentTrace) -> bool:
        """Publish one recorded segment; returns whether it was
        appended (False: duplicate, over-cap, unwritable dir)."""
        window = (trace.start_ms, trace.end_ms)
        variants = self._index.setdefault(window, {})
        if trace.pre_sha in variants or \
                len(variants) >= MAX_SEGMENT_VARIANTS:
            return False
        record = trace_record(trace)
        if not self.publish_record(record):
            return False
        variants[trace.pre_sha] = record
        return True


class TraceTier:
    """Process-wide facade: one :class:`TraceStore` per firmware
    image, opened lazily, memory-only degradation on an unwritable
    cache dir."""

    def __init__(self):
        self._stores: Dict[str, Optional[TraceStore]] = {}

    def _store(self, base_sha: str) -> Optional[TraceStore]:
        if base_sha not in self._stores:
            try:
                self._stores[base_sha] = TraceStore(
                    _store_path(base_sha))
            except OSError:
                self._stores[base_sha] = None    # unwritable: no tier
        return self._stores[base_sha]

    def load(self, base_sha: str, start_ms: int, end_ms: int,
             pre_sha: str) -> Optional[SegmentTrace]:
        store = self._store(base_sha)
        if store is None:
            return None
        return store.get(start_ms, end_ms, pre_sha)

    def publish(self, trace: SegmentTrace) -> bool:
        if trace.truncated:
            return False               # never persist a partial trace
        store = self._store(trace.base_sha)
        if store is None:
            return False
        return store.put(trace)

    def stats(self) -> List[dict]:
        return [store.stats() for store in self._stores.values()
                if store is not None]


#: the process-wide tier, or None when disabled (tests clear it to
#: re-read the environment)
_TIER: Optional[TraceTier] = None
_TIER_READY = False


def trace_tier() -> Optional[TraceTier]:
    """The process-wide tier — ``None`` when ``REPRO_TRACE_CACHE`` (or
    ``REPRO_NO_CACHE``) disables it."""
    global _TIER, _TIER_READY
    if not _TIER_READY:
        _TIER = TraceTier() if trace_enabled() else None
        _TIER_READY = True
    return _TIER


def clear_tier() -> None:
    """Drop the tier singleton (tests that change the environment)."""
    global _TIER, _TIER_READY
    _TIER = None
    _TIER_READY = False


# -- store export/import (the fleet blob channel) ---------------------------

def list_store_files() -> List[dict]:
    """Offerable ``.tbx`` stores in this process's cache dir:
    ``[{"name", "sha", "size"}, ...]``."""
    return _LAYOUT.list_store_files()


def read_store_file(name: str) -> Optional[bytes]:
    """The raw bytes of one offerable store, or ``None``."""
    return _LAYOUT.read_store_file(name)


def have_store_file(name: str) -> bool:
    """Whether this host already has (any version of) the named
    store."""
    return _LAYOUT.have_store_file(name)


def import_store_file(name: str, data: bytes) -> int:
    """Install a ``.tbx`` store fetched from a peer; returns records
    kept.  Fail-closed exactly like the ``.sbx`` import: every frame
    is re-walked (magic, length, digest), payloads pass through the
    restricted unpickler, and only shape-valid trace records are
    written."""
    return _LAYOUT.import_store_file(name, data,
                                     _validate_record_shape)
