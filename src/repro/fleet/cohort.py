"""Cohort lockstep execution: run shared firmware work once per cohort.

A fleet is mostly clones: thousands of devices run a handful of
firmware images, and inside one checkpoint segment two clones whose
state coincides execute *exactly* the same instruction stream.  This
module exploits that.  Within a group of same-firmware devices (a
**cohort**, keyed by the machine prototype's ``base_sha``) the first
device to reach a segment becomes its **leader**: it executes normally
while a recorder captures, per dispatch, the inputs that determined
the outcome and the delta the outcome applied.  Every **follower**
that reaches the same segment verifies its state against the leader's
and then *replays* the recorded deltas instead of re-executing —
falling out of lockstep (copy-on-write fork, executing normally for
the rest of the segment) at its first divergent dispatch.

Why this is sound — the dispatch read/write contract
----------------------------------------------------
``AmuletMachine.dispatch`` is a pure function of:

* the 64 KB memory image, CPU registers, and MPU configuration;
* the sensor environment (LCG position, clock, battery, baselines,
  steps) and the OS storage dict (the only service state execution
  *reads* — display/log/vibration/call state is append/write-only);
* the dispatched ``(app, handler, args)`` triple;
* the absolute cycle counter — but **only** when the code reads the
  cycle-timer port (``CycleTimer`` returns absolute quantized cycles).

The trace therefore carries a **state digest** per dispatch boundary
(:func:`state_digest`: sha-256 over the memory delta against the
firmware base image plus registers, env tuple, MPU state and storage
— everything a dispatch can read, nothing it can't) and a per-entry
**key** ``(app, handler, args, env)`` checked before each replay.  A
follower joins lockstep when its segment-start digest equals the
leader's; equality of the remaining inputs then follows by induction:
matching states plus matching deltas stay matching.  Timer-reading
dispatches additionally pin the leader's pre-dispatch cycle count
modulo ``divider * 2^16`` — the exact equivalence class under which
every timer read in the dispatch returns the same value.

The per-entry digests also buy **dispatch-boundary rejoin**: a forked
follower (executing for real after a divergence) re-offers its state
at each subsequent dispatch boundary — key and cycles-mod first (both
cheap), digest only when those match — and resumes delta replay the
moment it coincides with a recorded pre-state again.  This needs no
induction from the segment start: digest equality *is* direct
verification of every replay-relevant input, the entry key pins the
dispatched event (and with it ``env.time_ms``, hence the scheduler's
``now``), and cycle counts stay per-device because entries store
deltas.  A device that diverges for three dispatches and reconverges
replays the rest of the segment instead of interpreting it.

Entries store the complete write-set: dirtied memory pages
(hierarchical diff against a pre-dispatch copy), post registers,
cycle/instruction deltas, MPU state when a dispatch left it changed,
the post env tuple, service appends (display/log/storage/vibration/
calls/armed timers — timers are re-armed through the scheduler so the
follower's event queue evolves identically, tie-breaks included), and
fault records with cycles stored relative to dispatch start.  Replay
applies them and returns a reconstructed
:class:`~repro.kernel.machine.DispatchResult`, so the follower's
scheduler does its own statistics and fault-policy bookkeeping exactly
as if it had executed.

Byte-identity of all downstream telemetry is the contract;
``tests/test_fleet_cohort.py`` pins it segment-by-segment and
campaign-by-campaign.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.fault import FaultOrigin, FaultRecord
from repro.kernel.machine import AmuletMachine, DispatchResult

#: recorder backstop: a pathological segment (runaway timer storm)
#: stops recording past this many dispatches instead of holding
#: unbounded trace memory; followers replay the prefix and execute
#: the rest — slower, never wrong
MAX_TRACE_ENTRIES = 200_000

#: how many upcoming trace entries a forked follower offers its state
#: against at each dispatch boundary.  Divergences the fleet actually
#: produces (a rogue's extra fault recovery, one skipped handler)
#: displace the streams by a dispatch or two; a small window catches
#: those without scanning the whole tail on every diverged dispatch
REJOIN_WINDOW = 8


def _env_tuple(env) -> tuple:
    """The sensor environment as a flat comparable tuple — every field
    execution can read (see ``SensorEnvironment.state_dict``)."""
    return (env._state, env.time_ms, env.battery_percent,
            env.base_heart_rate, env.base_temperature,
            env.base_light, env.steps)


def _env_restore(env, values: tuple) -> None:
    (env._state, env.time_ms, env.battery_percent,
     env.base_heart_rate, env.base_temperature,
     env.base_light, env.steps) = values


class TraceEntry:
    """One recorded dispatch: the match key plus the full write-set."""

    __slots__ = ("key", "pre_sha", "cycles_mod", "pages", "regs_post",
                 "cycles_delta", "instructions_delta", "env_post",
                 "mpu_post", "faults", "digits", "texts", "log_words",
                 "log_buffers", "storage_updates", "vibrations_delta",
                 "calls_delta", "timers")

    def __init__(self) -> None:
        #: (app, handler, args tuple, pre-dispatch env tuple)
        self.key: tuple = ()
        #: leader's :func:`state_digest` at this dispatch boundary —
        #: the rejoin handshake (and entry 0's is the segment one)
        self.pre_sha: str = ""
        #: leader's pre-dispatch ``cycles % (divider * 2^16)`` when the
        #: dispatch read the timer port; None for the common
        #: timer-blind dispatch
        self.cycles_mod: Optional[int] = None
        self.pages: Dict[int, bytes] = {}
        self.regs_post: Tuple[int, ...] = ()
        self.cycles_delta = 0
        self.instructions_delta = 0
        self.env_post: tuple = ()
        #: post MPU state only when the dispatch left it changed
        #: (a fault recovery reconfigures back to the OS view, so
        #: this is almost always None)
        self.mpu_post: Optional[dict] = None
        self.faults: Tuple[dict, ...] = ()
        self.digits: Tuple[int, ...] = ()
        self.texts: Tuple[str, ...] = ()
        self.log_words: Tuple[int, ...] = ()
        self.log_buffers: Tuple[bytes, ...] = ()
        self.storage_updates: Dict[int, bytes] = {}
        self.vibrations_delta = 0
        self.calls_delta: Dict[int, int] = {}
        self.timers: Tuple[tuple, ...] = ()


@dataclass
class SegmentTrace:
    """The leader's recording of one checkpoint segment."""

    base_sha: str
    start_ms: int
    end_ms: int
    #: leader's :func:`state_digest` at segment start — a follower
    #: joins lockstep only on digest equality
    pre_sha: str
    #: equivalence modulus for timer-sensitive entries
    timer_modulus: int
    entries: List[TraceEntry] = field(default_factory=list)
    #: True once MAX_TRACE_ENTRIES was hit; followers reaching the end
    #: of a truncated trace fork instead of assuming the segment ended
    truncated: bool = False


@dataclass
class CohortStats:
    """Lockstep accounting, aggregated per work unit."""

    #: dispatches run on the simulated CPU (leaders + forked followers)
    executed: int = 0
    #: dispatches satisfied by delta replay
    replayed: int = 0
    #: segments recorded (one per distinct (firmware, start, state))
    leads: int = 0
    #: follower segments that passed the handshake and entered lockstep
    joins: int = 0
    #: follower segments that failed the handshake outright
    rejects: int = 0
    #: in-segment copy-on-write exits (first divergent dispatch)
    forks: int = 0
    #: forked followers that reconverged and resumed delta replay at a
    #: later dispatch boundary
    rejoins: int = 0
    #: segments satisfied from the persistent trace tier
    trace_hits: int = 0
    #: tier probes that found no matching recorded segment
    trace_misses: int = 0
    #: segment traces published to the persistent tier
    trace_published: int = 0


def state_digest(machine: AmuletMachine) -> str:
    """Everything a dispatch can read, folded to one hex digest.

    Covers the firmware identity, the memory image (as its page delta
    against the pristine base image — a hierarchical memcmp plus a few
    dirtied pages to hash, instead of 64 KB), registers, halted flag,
    env tuple, MPU configuration and the storage dict.  Append-only
    service state (display, log, vibration, call counters, the
    armed-timer log) is deliberately absent — execution never reads
    it, and leaving it out lets a device whose *history* differs but
    whose live state has reconverged (re)join lockstep.  The absolute
    cycle counter is also absent: entries store cycle *deltas*, and
    the rare timer-reading dispatch is pinned by ``cycles_mod``."""
    cpu = machine.cpu
    digest = hashlib.sha256()
    digest.update(machine.base_sha.encode())
    for offset, page in cpu.memory.delta_since(
            machine.base_image).items():
        digest.update(offset.to_bytes(4, "big"))
        digest.update(page)
    mpu = machine.mpu
    digest.update(repr((
        tuple(cpu.regs.snapshot()), cpu.halted,
        _env_tuple(machine.services.env),
        None if mpu is None else sorted(mpu.state_dict().items()),
        sorted(machine.services.storage.items()))).encode())
    return digest.hexdigest()


class CohortRecorder:
    """Leader-side ``dispatch_fn``: execute normally, record the entry."""

    def __init__(self, machine: AmuletMachine, trace: SegmentTrace,
                 stats: CohortStats):
        self.machine = machine
        self.trace = trace
        self.stats = stats

    def __call__(self, app: str, handler: str, args) -> DispatchResult:
        machine = self.machine
        trace = self.trace
        self.stats.executed += 1
        if trace.truncated:
            return machine.dispatch(app, handler, args)
        if len(trace.entries) >= MAX_TRACE_ENTRIES:
            trace.truncated = True
            return machine.dispatch(app, handler, args)

        cpu = machine.cpu
        svc = machine.services
        env = svc.env
        timer = machine.timer
        env_pre = _env_tuple(env)
        pre_sha = state_digest(machine)
        pre_mem = cpu.memory.image_bytes()
        pre_cycles = cpu.cycles
        pre_instructions = cpu.instructions
        pre_timer_reads = timer.reads
        pre_mpu = (machine.mpu.state_dict()
                   if machine.mpu is not None else None)
        pre_digits = len(svc.display.digits)
        pre_texts = len(svc.display.texts)
        pre_words = len(svc.log.words)
        pre_buffers = len(svc.log.buffers)
        pre_storage = dict(svc.storage)
        pre_vibrations = svc.vibrations
        pre_timers = len(svc.app_timers)
        pre_calls = dict(svc.calls)
        pre_faults = len(machine.fault_log.records)

        result = machine.dispatch(app, handler, args)

        entry = TraceEntry()
        entry.key = (app, handler, tuple(args), env_pre)
        entry.pre_sha = pre_sha
        if timer.reads != pre_timer_reads:
            entry.cycles_mod = pre_cycles % trace.timer_modulus
        entry.pages = cpu.memory.delta_since(pre_mem)
        entry.regs_post = tuple(cpu.regs.snapshot())
        entry.cycles_delta = cpu.cycles - pre_cycles
        entry.instructions_delta = cpu.instructions - pre_instructions
        entry.env_post = _env_tuple(env)
        post_mpu = (machine.mpu.state_dict()
                    if machine.mpu is not None else None)
        if post_mpu != pre_mpu:
            entry.mpu_post = post_mpu
        entry.faults = tuple(
            {"app": record.app, "origin": record.origin.value,
             "pc": record.pc, "address": record.address,
             "cycle_delta": record.cycle - pre_cycles,
             "detail": record.detail}
            for record in machine.fault_log.records[pre_faults:])
        entry.digits = tuple(svc.display.digits[pre_digits:])
        entry.texts = tuple(svc.display.texts[pre_texts:])
        entry.log_words = tuple(svc.log.words[pre_words:])
        entry.log_buffers = tuple(svc.log.buffers[pre_buffers:])
        entry.storage_updates = {
            key: blob for key, blob in svc.storage.items()
            if pre_storage.get(key) != blob}
        entry.vibrations_delta = svc.vibrations - pre_vibrations
        entry.calls_delta = {
            key: count - pre_calls.get(key, 0)
            for key, count in svc.calls.items()
            if count != pre_calls.get(key, 0)}
        entry.timers = tuple(svc.app_timers[pre_timers:])
        trace.entries.append(entry)
        return result


def _apply_entry(machine: AmuletMachine, scheduler,
                 entry: TraceEntry) -> DispatchResult:
    """Apply one recorded delta; returns the reconstructed result the
    scheduler's stats/fault-policy path consumes."""
    cpu = machine.cpu
    svc = machine.services
    pre_cycles = cpu.cycles
    cpu.memory.apply_pages(entry.pages)
    cpu.regs.restore(list(entry.regs_post))
    cpu.cycles = pre_cycles + entry.cycles_delta
    cpu.instructions += entry.instructions_delta
    cpu.halted = True
    if entry.mpu_post is not None:
        machine.mpu.load_state(entry.mpu_post)
    _env_restore(svc.env, entry.env_post)
    if entry.digits:
        svc.display.digits.extend(entry.digits)
    if entry.texts:
        svc.display.texts.extend(entry.texts)
    if entry.log_words:
        svc.log.words.extend(entry.log_words)
    if entry.log_buffers:
        svc.log.buffers.extend(entry.log_buffers)
    for key, blob in entry.storage_updates.items():
        svc.storage[key] = blob
    svc.vibrations += entry.vibrations_delta
    for key, delta in entry.calls_delta.items():
        svc.calls[key] = svc.calls.get(key, 0) + delta
    for armed in entry.timers:
        # the service log and the queue push both happen on replay,
        # through the same API, so tie-break sequencing is identical
        svc.app_timers.append(tuple(armed))
        scheduler.arm_app_timer(*armed)

    fault: Optional[FaultRecord] = None
    for packed in entry.faults:
        fault = FaultRecord(
            app=packed["app"], origin=FaultOrigin(packed["origin"]),
            pc=packed["pc"], address=packed["address"],
            cycle=pre_cycles + packed["cycle_delta"],
            detail=packed["detail"])
        machine.fault_log.log(fault)

    app = entry.key[0]
    state = machine.app_state[app]
    state.dispatches += 1
    state.cycles += entry.cycles_delta
    if fault is not None:
        state.faults += 1
    return DispatchResult(
        app=app, handler=entry.key[1], cycles=entry.cycles_delta,
        instructions=entry.instructions_delta,
        faulted=fault is not None, fault=fault,
        return_value=entry.regs_post[12])


class CohortFollower:
    """Follower-side ``dispatch_fn``: replay while in lockstep, fork
    copy-on-write (execute normally) at a divergence — and, with
    ``rejoin``, offer the forked device's state back to the trace at
    every later dispatch boundary, resuming replay on a match."""

    def __init__(self, machine: AmuletMachine, scheduler,
                 trace: SegmentTrace, stats: CohortStats,
                 rejoin: bool = True,
                 pre_sha: Optional[str] = None):
        self.machine = machine
        self.scheduler = scheduler
        self.trace = trace
        self.stats = stats
        self.rejoin = rejoin
        self.cursor = 0
        if pre_sha is None:
            pre_sha = state_digest(machine)
        self.lockstep = pre_sha == trace.pre_sha
        if self.lockstep:
            stats.joins += 1
        else:
            stats.rejects += 1

    def __call__(self, app: str, handler: str, args) -> DispatchResult:
        machine = self.machine
        if self.lockstep:
            trace = self.trace
            if self.cursor < len(trace.entries):
                entry = trace.entries[self.cursor]
                key = (app, handler, tuple(args),
                       _env_tuple(machine.services.env))
                if entry.key == key and (
                        entry.cycles_mod is None
                        or machine.cpu.cycles % trace.timer_modulus
                        == entry.cycles_mod):
                    self.cursor += 1
                    self.stats.replayed += 1
                    return _apply_entry(machine, self.scheduler, entry)
            # first divergence (or end of a truncated/shorter trace):
            # this device's state no longer tracks the leader's — run
            # the rest of the segment for real
            self.lockstep = False
            self.stats.forks += 1
        elif self.rejoin:
            entry = self._try_rejoin(app, handler, args)
            if entry is not None:
                self.stats.replayed += 1
                return _apply_entry(machine, self.scheduler, entry)
        self.stats.executed += 1
        return machine.dispatch(app, handler, args)

    def _try_rejoin(self, app: str, handler: str, args
                    ) -> Optional[TraceEntry]:
        """Re-handshake a forked follower against the next few
        recorded entries: key and cycles-mod are cheap pre-filters,
        the state digest (computed at most once per boundary) is the
        actual verification.  On a match the cursor jumps there and
        lockstep resumes."""
        trace = self.trace
        machine = self.machine
        entries = trace.entries
        key = (app, handler, tuple(args),
               _env_tuple(machine.services.env))
        digest = None
        limit = min(len(entries), self.cursor + REJOIN_WINDOW)
        for index in range(self.cursor, limit):
            entry = entries[index]
            if entry.key != key:
                continue
            if entry.cycles_mod is not None and \
                    machine.cpu.cycles % trace.timer_modulus \
                    != entry.cycles_mod:
                continue
            if digest is None:
                digest = state_digest(machine)
            if entry.pre_sha == digest:
                self.cursor = index + 1
                self.lockstep = True
                self.stats.rejoins += 1
                return entry
        if self.cursor < len(entries):
            # keep the window sliding with the follower's own stream,
            # so a persistent divergence stays a cheap key compare
            self.cursor += 1
        return None


def record_segment(machine: AmuletMachine, scheduler,
                   start_ms: int, end_ms: int,
                   stats: CohortStats,
                   pre_sha: Optional[str] = None) -> SegmentTrace:
    """Run ``[start_ms, end_ms)`` as the cohort leader, returning the
    trace followers replay.  Event seeding and draining are exactly
    :func:`repro.fleet.device.simulate_device`'s segment loop."""
    trace = SegmentTrace(
        base_sha=machine.base_sha, start_ms=start_ms, end_ms=end_ms,
        pre_sha=state_digest(machine) if pre_sha is None else pre_sha,
        timer_modulus=machine.timer.divider << 16)
    stats.leads += 1
    scheduler.dispatch_fn = CohortRecorder(machine, trace, stats)
    try:
        scheduler.seed_events(end_ms, start_ms)
        while scheduler.step(before_ms=end_ms) is not None:
            pass
    finally:
        scheduler.dispatch_fn = None
    return trace


def replay_segment(machine: AmuletMachine, scheduler,
                   trace: SegmentTrace, start_ms: int, end_ms: int,
                   stats: CohortStats, rejoin: bool = True,
                   pre_sha: Optional[str] = None) -> None:
    """Run ``[start_ms, end_ms)`` as a follower of ``trace``.

    ``pre_sha`` (the follower's already-computed segment-start digest)
    skips recomputing the handshake; ``rejoin=False`` restores the
    fork-and-interpret-to-segment-end behaviour."""
    scheduler.dispatch_fn = CohortFollower(machine, scheduler, trace,
                                           stats, rejoin=rejoin,
                                           pre_sha=pre_sha)
    try:
        scheduler.seed_events(end_ms, start_ms)
        while scheduler.step(before_ms=end_ms) is not None:
            pass
    finally:
        scheduler.dispatch_fn = None
