"""Deterministic per-device population derivation.

Every device in a fleet is a pure function of ``(fleet_seed,
device_id)``: the same pair always yields the same app subset, the
same per-source arrival jitter, the same battery capacity, and the
same sensor-environment seed — on any platform, in any process.  That
property is what makes the sharded executor's checkpoints portable
(a resuming worker rebuilds the device from its spec and loads state)
and the fleet aggregate independent of how devices were partitioned.

Derivation uses a SHA-256 counter stream rather than Python's
``random`` module: the stdlib generator's stream is stable in
practice, but hashing makes the independence of the per-device,
per-field draws explicit and keeps every draw in integer space.

Variation axes:

* **App subset** — 2..5 of the nine catalog apps (the paper's wearable
  carries a personal selection, not always all nine).
* **Rogue app** — with probability ``rogue_fraction``, the device also
  sideloads the wild-pointer rogue app from the wearable-week example.
  Under Feature-Limited the rogue needs pointers and is rejected at
  build time instead (see :func:`repro.fleet.device.build_device_apps`).
* **Arrival jitter** — each event source gets a per-device period
  scale in [0.90x, 1.30x] (manifests quote rate *ranges*: accelerometer
  apps sample "at 10-32 Hz") and a random phase within one period, so
  devices never tick in lockstep.
* **History compaction** — every device periodically compacts its
  sensor history with the paper's section-4.2 quicksort workload ("a
  high number of memory accesses and no context switches"), on a
  jittered ~45 s cadence.  This is the access-heavy half of the
  workload mix: the wearable handlers are call-dense (where context
  switches dominate), compaction is access-dense (where the per-access
  check cost dominates) — the two regimes whose trade-off Table 1
  measures.
* **Battery capacity** — 90..130 mAh around the platform's 110 mAh.
* **Sensor seed** — an independent LCG seed per device.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.apps.manifests import MANIFESTS
from repro.kernel.events import EventType, PeriodicSource

#: catalog order is the derivation order — append-only by contract
SUITE_NAMES: Tuple[str, ...] = tuple(sorted(MANIFESTS))

#: the wearable-week example's misbehaving third-party app: after a
#: few calls it dereferences a pointer into the OS region
ROGUE_SOURCE = """
int calls = 0;
int on_sample(int x) {
    calls++;
    if (calls > 5) {
        int *p = (int *)0x4400;   /* wanders into the OS after a bit */
        return *p;
    }
    return calls;
}
"""

ROGUE_APP = "rogue"
ROGUE_HANDLER = "on_sample"
ROGUE_PERIOD_MS = 500

#: the periodic sensor-history compaction duty (section-4.2 quicksort)
ANALYTICS_APP = "quicksort"
ANALYTICS_HANDLER = "quicksort_run"
ANALYTICS_PERIOD_MS = 45_000


class HashStream:
    """Deterministic integer draws from a SHA-256 counter stream."""

    def __init__(self, fleet_seed: int, device_id: int):
        self._key = f"amulet-fleet:{fleet_seed}:{device_id}".encode()
        self._counter = 0

    def draw(self, n: int) -> int:
        """Uniform-enough integer in ``[0, n)`` (64 bits of hash per
        draw, so modulo bias is negligible for fleet-sized ranges)."""
        if n <= 0:
            raise ValueError("draw() needs a positive range")
        digest = hashlib.sha256(
            self._key + b":" + str(self._counter).encode()).digest()
        self._counter += 1
        return int.from_bytes(digest[:8], "big") % n


@dataclass(frozen=True)
class SourceSpec:
    """One jittered periodic event source, JSON/pickle-plain."""

    app: str
    handler: str
    event_type: str        # EventType value
    period_ms: int
    phase_ms: int
    args: Tuple[int, ...] = ()

    def to_source(self) -> PeriodicSource:
        return PeriodicSource(app=self.app, handler=self.handler,
                              event_type=EventType(self.event_type),
                              period_ms=self.period_ms,
                              phase_ms=self.phase_ms,
                              args=self.args)


@dataclass(frozen=True)
class DeviceSpec:
    """Everything needed to rebuild one fleet device from scratch."""

    device_id: int
    fleet_seed: int
    apps: Tuple[str, ...]
    rogue: bool
    env_seed: int
    battery_mah: int
    sources: Tuple[SourceSpec, ...]
    restart_cooldown_ms: int = 2000


def _jittered(stream: HashStream, app: str, handler: str,
              event_type: str, period_ms: int,
              args: Tuple[int, ...] = ()) -> SourceSpec:
    scale = 90 + stream.draw(41)              # 0.90x .. 1.30x
    period = max(1, period_ms * scale // 100)
    phase = stream.draw(period)
    return SourceSpec(app=app, handler=handler, event_type=event_type,
                      period_ms=period, phase_ms=phase, args=args)


def device_spec(fleet_seed: int, device_id: int,
                rogue_fraction: float = 0.125,
                homogeneous: bool = False) -> DeviceSpec:
    """Derive device ``device_id`` of fleet ``fleet_seed``.

    With ``homogeneous`` every device is a clone of device 0 — same
    app subset, rogue draw, environment seed, battery, and jitter
    phases, differing only in ``device_id``.  That is the synthetic
    worst case for per-device cost and the best case for cohort
    lockstep (a fleet shipping one firmware build to everyone), used
    by the cohort benchmark scenario.  It is campaign identity, not an
    execution detail: a homogeneous fleet produces different results.
    """
    if homogeneous and device_id != 0:
        return replace(device_spec(fleet_seed, 0, rogue_fraction),
                       device_id=device_id)
    stream = HashStream(fleet_seed, device_id)

    size = 2 + stream.draw(4)                 # 2..5 apps
    pool = list(SUITE_NAMES)
    chosen = []
    for _ in range(size):
        chosen.append(pool.pop(stream.draw(len(pool))))
    apps = tuple(sorted(chosen))

    rogue = stream.draw(1_000_000) < int(round(rogue_fraction
                                               * 1_000_000))
    env_seed = 1 + stream.draw(0x7FFFFFFE)
    battery_mah = 90 + stream.draw(41)        # 90..130 mAh

    sources: List[SourceSpec] = []
    for app in apps:
        for rate in MANIFESTS[app].rates:
            sources.append(_jittered(stream, app, rate.handler,
                                     rate.event_type.value,
                                     rate.period_ms))
    sources.append(_jittered(stream, ANALYTICS_APP, ANALYTICS_HANDLER,
                             EventType.TIMER.value,
                             ANALYTICS_PERIOD_MS,
                             args=(stream.draw(10_000),)))
    if rogue:
        sources.append(_jittered(stream, ROGUE_APP, ROGUE_HANDLER,
                                 EventType.TIMER.value,
                                 ROGUE_PERIOD_MS))

    return DeviceSpec(device_id=device_id, fleet_seed=fleet_seed,
                      apps=apps, rogue=rogue, env_seed=env_seed,
                      battery_mah=battery_mah, sources=tuple(sources))


def generate_population(fleet_seed: int, devices: int,
                        rogue_fraction: float = 0.125,
                        homogeneous: bool = False
                        ) -> List[DeviceSpec]:
    return [device_spec(fleet_seed, device_id, rogue_fraction,
                        homogeneous)
            for device_id in range(devices)]


def reference_device_spec(rogue: bool = True,
                          env_seed: int = 0xC0FFEE) -> DeviceSpec:
    """The paper's wearable as a fleet device: all nine apps at their
    manifest rates, no jitter, stock 110 mAh battery — plus (by
    default) the sideloaded rogue.  Used by the wearable-week example
    so the demo and the fleet layer share one code path."""
    sources: List[SourceSpec] = []
    for app in SUITE_NAMES:
        for index, rate in enumerate(MANIFESTS[app].rates):
            sources.append(SourceSpec(
                app=app, handler=rate.handler,
                event_type=rate.event_type.value,
                period_ms=rate.period_ms, phase_ms=index + 1))
    sources.append(SourceSpec(
        app=ANALYTICS_APP, handler=ANALYTICS_HANDLER,
        event_type=EventType.TIMER.value,
        period_ms=ANALYTICS_PERIOD_MS, phase_ms=0, args=(7,)))
    if rogue:
        sources.append(SourceSpec(
            app=ROGUE_APP, handler=ROGUE_HANDLER,
            event_type=EventType.TIMER.value,
            period_ms=ROGUE_PERIOD_MS, phase_ms=0))
    return DeviceSpec(device_id=0, fleet_seed=-1,
                      apps=SUITE_NAMES, rogue=rogue,
                      env_seed=env_seed, battery_mah=110,
                      sources=tuple(sources))
