"""Simulate one fleet device, checkpoint segment by segment.

The driver advances simulated time in fixed segments: seed the
periodic sources over ``[t, t+K)``, drain every event before the
boundary, snapshot, repeat.  Because windowed seeding and boundary-
bounded stepping deliver exactly the event sequence a single
full-horizon run would (see ``PeriodicSource.events_until`` and
``Scheduler.step``), a run resumed from any checkpoint is
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.aft.cache import build_firmware
from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.apps.catalog import load_app, load_suite
from repro.errors import ReproError
from repro.fleet.cohort import CohortStats, SegmentTrace, \
    record_segment, replay_segment, state_digest
from repro.fleet.population import ANALYTICS_APP, DeviceSpec, \
    ROGUE_APP, ROGUE_HANDLER, ROGUE_SOURCE
from repro.fleet.snapshot import restore_device, snapshot_device
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import AppSchedule, RestartPolicy, Scheduler
from repro.kernel.services import SensorEnvironment

DEFAULT_CHECKPOINT_MS = 10 * 60 * 1000      # 10 simulated minutes

#: execution-cache strategies a fleet device can run under.  All three
#: produce byte-identical device state (the property tests pin this) —
#: the choice only affects wall-clock speed:
#:
#: ``shared``   translated blocks are published to the process-wide
#:              content-addressed store, so sibling devices running the
#:              same firmware skip translation entirely (default)
#: ``private``  per-device block cache, no cross-device sharing
#: ``step``     no block translation at all — the one-instruction-at-a-
#:              time reference interpreter (differential-testing oracle)
CACHE_MODES = ("shared", "private", "step")


def _machine_cache_kwargs(cache_mode: str) -> dict:
    """Map a fleet-level cache mode onto AmuletMachine's knobs."""
    try:
        return {
            "shared": {"step_only": False, "shared_cache": True},
            "private": {"step_only": False, "shared_cache": False},
            "step": {"step_only": True, "shared_cache": False},
        }[cache_mode]
    except KeyError:
        raise ReproError(
            f"unknown cache mode {cache_mode!r} "
            f"(choose from {', '.join(CACHE_MODES)})") from None


@dataclass
class DeviceRun:
    """A finished (or resumed-and-finished) device simulation."""

    spec: DeviceSpec
    machine: AmuletMachine
    scheduler: Scheduler
    sim_ms: int
    #: False when the spec asked for a rogue but the model rejected it
    #: at build time (Feature-Limited refuses pointer-using apps)
    rogue_built: bool


def build_device_apps(spec: DeviceSpec, model: IsolationModel
                      ) -> tuple:
    """``(apps, rogue_built)`` for this spec under this model.

    Every device carries its catalog subset plus the history-compaction
    workload (iterative quicksort, so it builds under every model).
    The rogue app dereferences raw pointers, which the Feature-Limited
    language subset forbids — AmuletC would reject it at build time, so
    the device ships without it (and the telemetry records the
    rejection instead of a runtime fault)."""
    apps: List[AppSource] = load_suite(spec.apps)
    apps.append(load_app(ANALYTICS_APP))
    rogue_built = (spec.rogue
                   and model is not IsolationModel.FEATURE_LIMITED)
    if rogue_built:
        apps.append(AppSource(ROGUE_APP, ROGUE_SOURCE,
                              handlers=[ROGUE_HANDLER]))
    return apps, rogue_built


def make_device(spec: DeviceSpec, model: IsolationModel,
                cache_mode: str = "shared") -> tuple:
    """Build ``(machine, scheduler, rogue_built)`` from a spec —
    deterministic, so any worker can reconstruct any device."""
    apps, rogue_built = build_device_apps(spec, model)
    firmware = build_firmware(model, apps)
    machine = AmuletMachine(firmware,
                            env=SensorEnvironment(spec.env_seed),
                            **_machine_cache_kwargs(cache_mode))
    scheduler = Scheduler(machine, policy=RestartPolicy.RESTART_AFTER,
                          restart_cooldown_ms=spec.restart_cooldown_ms)
    schedules: Dict[str, AppSchedule] = {}
    for source_spec in spec.sources:
        if source_spec.app == ROGUE_APP and not rogue_built:
            continue
        schedule = schedules.get(source_spec.app)
        if schedule is None:
            schedule = AppSchedule(source_spec.app)
            schedules[source_spec.app] = schedule
            scheduler.add_app(schedule)
        schedule.sources.append(source_spec.to_source())
    return machine, scheduler, rogue_built


def simulate_device(spec: DeviceSpec, model: IsolationModel,
                    sim_ms: int,
                    checkpoint_every_ms: int = DEFAULT_CHECKPOINT_MS,
                    on_checkpoint: Optional[Callable[[int, dict],
                                                     None]] = None,
                    resume: Optional[dict] = None,
                    cache_mode: str = "shared") -> DeviceRun:
    """Run (or resume) one device for ``sim_ms`` of simulated time.

    ``on_checkpoint(sim_ms, snapshot)`` fires at every interior segment
    boundary; ``resume`` takes a snapshot produced by such a callback
    (or by :func:`repro.fleet.snapshot.snapshot_device`).
    ``cache_mode`` (see :data:`CACHE_MODES`) trades wall-clock speed
    only — results are identical across modes."""
    machine, scheduler, rogue_built = make_device(
        spec, model, cache_mode=cache_mode)
    start_ms = 0
    if resume is not None:
        start_ms = restore_device(machine, scheduler, resume)

    t = start_ms
    while t < sim_ms:
        end = min(t + checkpoint_every_ms, sim_ms)
        scheduler.seed_events(end, t)
        while scheduler.step(before_ms=end) is not None:
            pass
        t = end
        if on_checkpoint is not None and t < sim_ms:
            on_checkpoint(t, snapshot_device(machine, scheduler, t))

    return DeviceRun(spec=spec, machine=machine, scheduler=scheduler,
                     sim_ms=sim_ms, rogue_built=rogue_built)


def simulate_cohort(specs: Sequence[DeviceSpec], model: IsolationModel,
                    sim_ms: int,
                    checkpoint_every_ms: int = DEFAULT_CHECKPOINT_MS,
                    on_checkpoint: Optional[Callable[[int, int, dict],
                                                     None]] = None,
                    resumes: Optional[Dict[int, dict]] = None,
                    cache_mode: str = "shared",
                    stats: Optional[CohortStats] = None,
                    rejoin: bool = True,
                    tier=None) -> Dict[int, DeviceRun]:
    """Run (or resume) several devices together, lockstep where their
    firmware and state coincide (see :mod:`repro.fleet.cohort`).

    Devices advance segment by segment, interleaved: all devices at
    the earliest pending segment run it before anyone moves on.  The
    first device to run a ``(firmware, segment)`` pair *from a given
    pre-state* records a trace; every later same-firmware device at
    that segment whose state digest matches replays it.  A device
    matching nothing executes normally (recording its own variant
    when the persistent ``tier`` — a
    :class:`repro.fleet.tracetier.TraceTier` — is attached, so a
    rerun, a sibling unit, or a remote worker replays it next time),
    and with ``rejoin`` a mid-segment divergence can re-enter
    lockstep at a later dispatch boundary.  In-memory traces die as
    soon as no device can still use them, bounding trace memory to
    roughly the resume-point spread.

    ``on_checkpoint(device_id, sim_ms, snapshot)`` fires at every
    interior segment boundary (note the extra leading ``device_id``
    compared to :func:`simulate_device`'s callback); ``resumes`` maps
    device id to a snapshot.  Results are byte-identical to running
    :func:`simulate_device` per device — with the tier cold, warm,
    or absent, rejoin on or off — the tests pin this.
    """
    resumes = resumes or {}
    stats = stats if stats is not None else CohortStats()

    devices: Dict[int, tuple] = {}
    position: Dict[int, int] = {}
    for spec in specs:
        machine, scheduler, rogue_built = make_device(
            spec, model, cache_mode=cache_mode)
        start_ms = 0
        resume = resumes.get(spec.device_id)
        if resume is not None:
            start_ms = restore_device(machine, scheduler, resume)
        devices[spec.device_id] = (spec, machine, scheduler,
                                   rogue_built)
        position[spec.device_id] = start_ms

    order = [spec.device_id for spec in specs]
    #: (base_sha, start_ms) -> {pre-state digest: trace}
    traces: Dict[tuple, Dict[str, SegmentTrace]] = {}
    while True:
        pending = [p for p in position.values() if p < sim_ms]
        if not pending:
            break
        t = min(pending)
        end = min(t + checkpoint_every_ms, sim_ms)
        for device_id in order:
            if position[device_id] != t:
                continue
            spec, machine, scheduler, _rogue = devices[device_id]
            key = (machine.base_sha, t)
            bucket = traces.setdefault(key, {})
            pre_sha = state_digest(machine)
            trace = bucket.get(pre_sha)
            if trace is None and tier is not None:
                trace = tier.load(machine.base_sha, t, end, pre_sha)
                if trace is not None:
                    bucket[pre_sha] = trace
                    stats.trace_hits += 1
                else:
                    stats.trace_misses += 1
            if trace is not None:
                replay_segment(machine, scheduler, trace, t, end,
                               stats, rejoin=rejoin, pre_sha=pre_sha)
            elif not bucket or tier is not None:
                # lead this (segment, state): record — and persist,
                # so the next unit/process/worker replays instead
                trace = record_segment(machine, scheduler, t, end,
                                       stats, pre_sha=pre_sha)
                bucket[pre_sha] = trace
                if tier is not None and tier.publish(trace):
                    stats.trace_published += 1
            else:
                # no tier and a leader already recorded this segment
                # from a different state: the handshake rejects and
                # the device executes (rejoining mid-segment if its
                # state converges onto the leader's)
                first = next(iter(bucket.values()))
                replay_segment(machine, scheduler, first, t, end,
                               stats, rejoin=rejoin, pre_sha=pre_sha)
            position[device_id] = end
            if on_checkpoint is not None and end < sim_ms:
                on_checkpoint(device_id, end,
                              snapshot_device(machine, scheduler, end))
        # a trace is only usable by a device *at* its start segment;
        # everyone at this round's segment has moved past it
        horizon = min(position.values())
        traces = {key: trace for key, trace in traces.items()
                  if key[1] >= horizon}

    return {
        device_id: DeviceRun(
            spec=entry[0], machine=entry[1], scheduler=entry[2],
            sim_ms=sim_ms, rogue_built=entry[3])
        for device_id, entry in devices.items()}
