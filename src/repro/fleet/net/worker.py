"""The remote fleet worker: ``repro fleet worker --connect host:port``.

A worker is a loop around one connection: handshake (protocol,
``STATE_VERSION``, ``DISK_FORMAT``, campaign key, and — when the
coordinator is configured with a shared secret — an HMAC
challenge/response proving this worker holds it too), import any warm
``.sbx`` translation stores the coordinator offers, then lease units
until the coordinator says shutdown.  Each lease runs through the
exact same :func:`~repro.fleet.device.simulate_device` /
:func:`~repro.fleet.device.simulate_cohort` code a local pool worker
uses — the only difference is where the bytes go:

* checkpoints are serialized on the simulating thread and shipped by
  the :class:`~repro.fleet.ckptio.AsyncCheckpointWriter`'s writer
  thread through a socket **sink**, keeping the local path's
  double-buffered overlap (and its stall accounting) on the wire;
* each finished device is committed with a ``dev_done`` frame — the
  durable per-device commit that makes lease reassignment idempotent;
* the unit ends with a ``result`` frame carrying the same stats dict
  :func:`~repro.fleet.executor.run_unit` returns.

Report frames (``ckpt``/``dev_done``/``result``/``profile``) flow
through a :class:`FrameBatcher`: they buffer until ``--batch-bytes``
accumulate or the oldest waits ``--batch-ms``, then ship as one
``batch`` frame — tiny dev_done frames stop paying a syscall and a
TCP round each.  Anything that expects a reply (lease_req, blob_get)
flushes the buffer first, so the coordinator always observes frames
in the order the worker produced them.  ``--batch-bytes 0`` disables
coalescing entirely (byte-for-byte the PR 9 wire behavior), and
``--compress off`` disables the zlib blob framing that otherwise
shrinks checkpoint and store transfers.

A heartbeat thread pings on the coordinator's advertised cadence
(±10% jitter, so a fleet of same-config workers doesn't phase-lock
into synchronized ping bursts) to keep an idle or long-simulating
worker's lease alive.  Connection loss triggers reconnect with
exponential backoff plus jitter; a ``campaign``-kind reject (the
coordinator moved on to a different campaign) drops the remembered
key and re-handshakes fresh, while a ``version``-kind reject is
fatal — no amount of retrying fixes a version skew.
"""

from __future__ import annotations

import os
import random
import socket
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.fleet import tracetier
from repro.fleet.ckptio import AsyncCheckpointWriter
from repro.fleet.cohort import CohortStats
from repro.fleet.device import simulate_cohort, simulate_device
from repro.fleet.executor import FleetConfig
from repro.fleet.net.protocol import Channel, PROTO_VERSION, WireError, \
    auth_mac, blob_sha, pack_batch
from repro.fleet.population import device_spec
from repro.fleet.snapshot import STATE_VERSION, checkpoint_bytes, \
    parse_checkpoint
from repro.fleet.telemetry import MODELS_BY_KEY, device_record
from repro.msp430.execcache import DISK_FORMAT, have_store_file, \
    import_store_file

#: per-frame reply deadline: the coordinator answers lease/blob
#: requests immediately, so a silent minute means the link is gone
REPLY_TIMEOUT_S = 60.0

#: default coalescing bounds: flush a batch once this many payload
#: bytes accumulate, or once its oldest frame has waited this long
DEFAULT_BATCH_BYTES = 65536
DEFAULT_BATCH_MS = 50


class _Shutdown(Exception):
    """Coordinator says the campaign is complete — exit 0."""


class _Reject(Exception):
    """Handshake refused; ``kind`` is ``"campaign"`` (recoverable by
    re-handshaking keyless) or ``"version"`` (fatal)."""

    def __init__(self, kind: str, reason: str):
        super().__init__(reason)
        self.kind = kind


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``host:port`` with a loud error, because this is typed by
    hand."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"--connect expects host:port (got {text!r})")
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"--connect port must be an integer (got {port!r})") \
            from None


def _recv_reply(channel: Channel, want: Tuple[str, ...]
                ) -> Tuple[dict, Optional[bytes]]:
    """Receive the next frame of an expected type, absorbing heartbeat
    echoes and honoring an unsolicited shutdown wherever it lands."""
    while True:
        message, blob = channel.recv(timeout=REPLY_TIMEOUT_S)
        mtype = message["type"]
        if mtype == "pong":
            continue
        if mtype == "shutdown":
            raise _Shutdown()
        if mtype in want:
            return message, blob
        raise WireError(
            f"expected one of {want}, got {mtype!r}")


class FrameBatcher:
    """Coalesce report frames into bounded ``batch`` frames.

    ``add`` buffers; a batch ships when the buffered payload reaches
    ``max_bytes`` or the oldest frame has waited ``max_ms`` (a pump
    thread watches the clock).  ``direct`` flushes then sends — the
    path for anything expecting a reply, so frame order on the wire
    matches production order.  A single buffered frame ships as
    itself, not wrapped; ``max_bytes <= 0`` disables coalescing so
    every ``add`` degenerates to a plain send.  ``compress`` turns on
    the zlib blob framing for everything this batcher ships.
    """

    #: rough JSON envelope per sub-message, counted toward max_bytes
    #: so a flood of blobless dev_done frames still flushes
    FRAME_OVERHEAD = 256

    def __init__(self, channel: Channel,
                 max_bytes: int = DEFAULT_BATCH_BYTES,
                 max_ms: int = DEFAULT_BATCH_MS,
                 compress: bool = True):
        self.channel = channel
        self.max_bytes = max_bytes
        self.max_ms = max_ms
        self.compress = compress
        self.batches_sent = 0
        self._pending: List[tuple] = []
        self._pending_bytes = 0
        self._oldest = 0.0
        self._lock = threading.Lock()
        self._ship_lock = threading.Lock()
        self._stop = threading.Event()
        self._pump: Optional[threading.Thread] = None
        if self.enabled:
            self._pump = threading.Thread(
                target=self._pump_loop, name="fleet-batch",
                daemon=True)
            self._pump.start()

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def add(self, message: dict,
            blob: Optional[bytes] = None) -> None:
        if not self.enabled:
            self.channel.send(message, blob=blob,
                              compress=self.compress)
            return
        with self._lock:
            if not self._pending:
                self._oldest = time.monotonic()
            self._pending.append((message, blob))
            self._pending_bytes += self.FRAME_OVERHEAD + \
                (len(blob) if blob is not None else 0)
            ship = self._pending_bytes >= self.max_bytes
        if ship:
            self.flush()

    def flush(self) -> None:
        # pop and send under one lock: concurrent flushes (pump
        # thread vs. simulating thread) must not reorder batches
        with self._ship_lock:
            with self._lock:
                pending, self._pending = self._pending, []
                self._pending_bytes = 0
            if not pending:
                return
            if len(pending) == 1:
                message, blob = pending[0]
            else:
                message, blob = pack_batch(pending)
                self.batches_sent += 1
            self.channel.send(message, blob=blob,
                              compress=self.compress)

    def direct(self, message: dict,
               blob: Optional[bytes] = None) -> None:
        """Flush, then send — for frames that expect a reply."""
        self.flush()
        self.channel.send(message, blob=blob, compress=self.compress)

    def close(self) -> None:
        self._stop.set()
        if self._pump is not None:
            self._pump.join(timeout=1.0)
        try:
            self.flush()
        except (WireError, OSError):
            pass                        # connection already gone

    def _pump_loop(self) -> None:
        age_limit = max(0.001, self.max_ms / 1000.0)
        while not self._stop.wait(age_limit / 2):
            with self._lock:
                due = bool(self._pending) and \
                    time.monotonic() - self._oldest >= age_limit
            if due:
                try:
                    self.flush()
                except (WireError, OSError):
                    return              # main loop handles the drop


def _fetch_blob(batcher: FrameBatcher, channel: Channel, name: str,
                want_sha: str) -> Optional[bytes]:
    """Content-addressed fetch: ``None`` unless the coordinator
    returns exactly the bytes whose sha we asked for (fail closed —
    a changed or vanished blob means run without it).  ``zip`` asks
    the coordinator to deflate the transfer; the channel inflates
    transparently, so the digest below is always over raw bytes."""
    request = {"type": "blob_get", "name": name, "sha": want_sha}
    if batcher.compress:
        request["zip"] = True
    batcher.direct(request)
    message, blob = _recv_reply(channel, ("blob", "blob_missing"))
    if message["type"] == "blob_missing" or blob is None:
        return None
    if blob_sha(blob) != want_sha:
        return None
    return blob


def _heartbeat(channel: Channel, interval: float,
               stop: threading.Event) -> None:
    # ±10% jitter: workers sharing a start time (a cohort of systemd
    # units, a test harness) would otherwise ping in phase forever
    while not stop.wait(interval * (0.9 + 0.2 * random.random())):
        try:
            channel.send({"type": "ping"})
        except (WireError, OSError):
            return                      # main loop handles the drop


def _import_stores(batcher: FrameBatcher, channel: Channel,
                   offers: List[dict], say: Callable[[str], None],
                   prefix: str = "sbx",
                   have: Callable[[str], bool] = have_store_file,
                   install: Callable[[str, bytes], int]
                   = import_store_file,
                   label: str = "translation") -> None:
    """Warm this host's cache tiers from the coordinator's store
    offers (``.sbx`` translation stores, ``.tbx`` trace stores);
    every store is fetched by content hash and re-validated
    frame-by-frame on import."""
    for offer in offers:
        name = str(offer.get("name", ""))
        sha = offer.get("sha")
        if not name or not isinstance(sha, str) or have(name):
            continue
        blob = _fetch_blob(batcher, channel, f"{prefix}:{name}", sha)
        if blob is None:
            continue
        records = install(name, blob)
        if records:
            say(f"imported {label} store {name} "
                f"({records} records)")


def _run_lease(batcher: FrameBatcher, channel: Channel, lease: dict,
               config: FleetConfig, config_key: str, cache_mode: str,
               cohort: bool, rejoin: bool, profile: bool,
               worker_id: str, crash_state: Dict[str, int]) -> None:
    """Run one leased unit, mirroring the local ``run_unit`` entry
    point: wire sinks in place of files, and — when the campaign
    profiles — a per-unit cProfile dump shipped home as a ``profile``
    frame so ``--profile`` output is transport-agnostic."""
    if not profile:
        _simulate_lease(batcher, channel, lease, config, config_key,
                        cache_mode, cohort, rejoin, worker_id,
                        crash_state)
        return
    import cProfile
    prof = cProfile.Profile()
    prof.enable()
    try:
        _simulate_lease(batcher, channel, lease, config, config_key,
                        cache_mode, cohort, rejoin, worker_id,
                        crash_state)
    finally:
        prof.disable()
    handle, prof_path = tempfile.mkstemp(suffix=".prof")
    os.close(handle)
    try:
        prof.dump_stats(prof_path)
        dump = Path(prof_path).read_bytes()
    finally:
        os.unlink(prof_path)
    batcher.add({"type": "profile", "model": lease["model"],
                 "first": lease["first"], "lease": lease["lease"]},
                blob=dump)


def _simulate_lease(batcher: FrameBatcher, channel: Channel,
                    lease: dict, config: FleetConfig,
                    config_key: str, cache_mode: str, cohort: bool,
                    rejoin: bool, worker_id: str,
                    crash_state: Dict[str, int]) -> None:
    """The local ``_run_unit`` loop over wire sinks."""
    t_start = time.time()
    model_key = lease["model"]
    lease_id = lease["lease"]
    first = lease["first"]
    device_ids = [int(device) for device in lease["devices"]]
    model = MODELS_BY_KEY[model_key]
    cohort_stats = CohortStats()
    records: Dict[int, dict] = {}

    resumes: Dict[int, dict] = {}
    for device_text, sha in dict(lease.get("ckpts", {})).items():
        device = int(device_text)
        blob = _fetch_blob(batcher, channel,
                           f"ckpt:{model_key}:{device}", str(sha))
        if blob is None:
            continue                   # fresh start is byte-identical
        resumes[device] = parse_checkpoint(blob, config_key, device)

    def sink(device_id, payload: bytes) -> None:
        batcher.add({"type": "ckpt", "model": model_key,
                     "device": device_id, "lease": lease_id},
                    blob=payload)
        crash_state["sent"] += 1
        if 0 < crash_state["limit"] <= crash_state["sent"]:
            try:
                batcher.flush()        # land what was reported
            except (WireError, OSError):
                pass
            os._exit(3)                # a worker dying mid-unit

    writer = AsyncCheckpointWriter(sink=sink)

    def submit_checkpoint(device_id: int, sim_ms: int,
                          snapshot: dict) -> None:
        writer.submit(device_id,
                      checkpoint_bytes(config_key, device_id,
                                       snapshot))

    def commit_record(device_id: int) -> None:
        # same commit order as the local path: drain the in-flight
        # checkpoint sends, then the record — the batcher preserves
        # production order, so the coordinator still sees each ckpt
        # before the dev_done that retires it
        batcher.add({"type": "dev_done", "model": model_key,
                     "device": device_id, "first": first,
                     "lease": lease_id,
                     "record": records[device_id]})

    with writer:
        if cohort:
            specs = [device_spec(config.seed, device_id,
                                 config.rogue_fraction,
                                 config.homogeneous)
                     for device_id in device_ids]
            runs = simulate_cohort(
                specs, model, sim_ms=config.sim_ms,
                checkpoint_every_ms=config.checkpoint_ms,
                on_checkpoint=submit_checkpoint,
                resumes={device: resumes[device]
                         for device in device_ids
                         if device in resumes},
                cache_mode=cache_mode, stats=cohort_stats,
                rejoin=rejoin, tier=tracetier.trace_tier())
            writer.drain()
            for device_id in device_ids:
                records[device_id] = device_record(runs[device_id],
                                                   model_key)
                commit_record(device_id)
        else:
            for device_id in device_ids:
                spec = device_spec(config.seed, device_id,
                                   config.rogue_fraction,
                                   config.homogeneous)
                run = simulate_device(
                    spec, model, sim_ms=config.sim_ms,
                    checkpoint_every_ms=config.checkpoint_ms,
                    on_checkpoint=lambda sim_ms, snapshot,
                    _device=device_id: submit_checkpoint(
                        _device, sim_ms, snapshot),
                    resume=resumes.get(device_id),
                    cache_mode=cache_mode)
                records[device_id] = device_record(run, model_key)
                writer.drain()
                commit_record(device_id)

    batcher.add({"type": "result", "lease": lease_id,
                 "model": model_key,
                 "stats": {
                     "devices": list(device_ids),
                     "t_start": t_start,
                     "t_end": time.time(),
                     "ckpt_flushes": writer.flushes,
                     "ckpt_stall_s": round(writer.stall_s, 6),
                     "ckpt_bytes": writer.bytes_written,
                     "cohort_replayed": cohort_stats.replayed,
                     "cohort_executed": cohort_stats.executed,
                     "cohort_forks": cohort_stats.forks,
                     "cohort_rejoins": cohort_stats.rejoins,
                     "trace_hits": cohort_stats.trace_hits,
                     "trace_misses": cohort_stats.trace_misses,
                     "trace_published": cohort_stats.trace_published,
                     "worker": worker_id,
                 }})


def _handshake(channel: Channel, campaign_key: Optional[str],
               worker_id: str,
               secret: Optional[bytes] = None) -> dict:
    channel.send({"type": "hello", "proto": PROTO_VERSION,
                  "state_version": STATE_VERSION,
                  "disk_format": DISK_FORMAT,
                  "campaign": campaign_key,
                  "worker": worker_id,
                  "host": socket.gethostname()})
    message, _ = channel.recv(timeout=REPLY_TIMEOUT_S)
    if message["type"] == "challenge":
        if secret is None:
            raise _Reject(
                "auth", "coordinator requires a shared secret — "
                "pass --secret-file or set REPRO_FLEET_SECRET")
        channel.send({"type": "auth",
                      "mac": auth_mac(secret,
                                      str(message.get("nonce", "")))})
        message, _ = channel.recv(timeout=REPLY_TIMEOUT_S)
    if message["type"] == "reject":
        raise _Reject(str(message.get("kind", "version")),
                      str(message.get("reason", "rejected")))
    if message["type"] != "welcome":
        raise WireError(
            f"expected welcome, got {message['type']!r}")
    return message


def _work_loop(batcher: FrameBatcher, channel: Channel,
               welcome: dict, config: FleetConfig,
               config_key: str, cache_mode: str, worker_id: str,
               crash_state: Dict[str, int],
               say: Callable[[str], None]) -> None:
    idle_retry_s = float(welcome.get("idle_retry_s", 1.0))
    cohort = bool(welcome.get("cohort", False))
    rejoin = bool(welcome.get("rejoin", True))
    profile = bool(welcome.get("profile", False))
    while True:
        batcher.direct({"type": "lease_req", "worker": worker_id})
        message, _ = _recv_reply(channel, ("lease", "idle"))
        if message["type"] == "idle":
            time.sleep(max(0.0, float(message.get("retry_s",
                                                  idle_retry_s))))
            continue
        say(f"lease {message['lease']}: model {message['model']}, "
            f"{len(message['devices'])} device(s)")
        _run_lease(batcher, channel, message, config, config_key,
                   cache_mode, cohort, rejoin, profile, worker_id,
                   crash_state)


def run_worker(connect: str, worker_id: Optional[str] = None,
               cache_mode: Optional[str] = None,
               retry_limit: int = 10,
               crash_after_checkpoints: int = 0,
               report: Optional[Callable[[str], None]] = None,
               secret: Optional[bytes] = None,
               batch_bytes: int = DEFAULT_BATCH_BYTES,
               batch_ms: int = DEFAULT_BATCH_MS,
               compress: bool = True) -> int:
    """Worker main loop; returns a process exit code (0 campaign
    complete, 1 coordinator unreachable, 2 version/campaign skew).

    ``batch_bytes``/``batch_ms`` bound the report-frame coalescing
    (``batch_bytes=0`` disables it); ``compress`` toggles zlib blob
    framing.  Like every other execution knob, neither changes a
    single byte of campaign output."""
    say = report if report is not None else (lambda _line: None)
    host, port = parse_endpoint(connect)
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    campaign_key: Optional[str] = None
    crash_state = {"sent": 0, "limit": crash_after_checkpoints}
    failures = 0
    backoff = 0.5
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10)
        except OSError as error:
            failures += 1
            if failures > retry_limit:
                say(f"giving up after {failures} failed connection "
                    f"attempt(s): {error}")
                return 1
            delay = backoff * (1.0 + random.random())
            say(f"connect to {host}:{port} failed ({error}); "
                f"retrying in {delay:.1f}s")
            time.sleep(delay)
            backoff = min(backoff * 2, 30.0)
            continue
        channel = Channel(sock)
        batcher = FrameBatcher(channel, max_bytes=batch_bytes,
                               max_ms=batch_ms, compress=compress)
        stop = threading.Event()
        heartbeat: Optional[threading.Thread] = None
        try:
            welcome = _handshake(channel, campaign_key, worker_id,
                                 secret)
            failures = 0
            backoff = 0.5
            campaign_key = str(welcome["campaign"])
            config = FleetConfig(
                **{**welcome["config"],
                   "models": tuple(welcome["config"]["models"])})
            if config.key() != campaign_key:
                say("campaign key does not match the advertised "
                    "config — version skew between hosts")
                return 2
            mode = cache_mode if cache_mode is not None \
                else str(welcome.get("cache_mode", "shared"))
            _import_stores(batcher, channel,
                           list(welcome.get("stores", [])), say)
            _import_stores(batcher, channel,
                           list(welcome.get("trace_stores", [])),
                           say, prefix="tbx",
                           have=tracetier.have_store_file,
                           install=tracetier.import_store_file,
                           label="trace")
            heartbeat = threading.Thread(
                target=_heartbeat,
                args=(channel,
                      max(0.1, float(welcome.get("heartbeat_s", 5.0))),
                      stop),
                name="fleet-heartbeat", daemon=True)
            heartbeat.start()
            say(f"joined campaign {campaign_key} at {host}:{port} "
                f"as {worker_id!r}")
            _work_loop(batcher, channel, welcome, config,
                       campaign_key, mode, worker_id, crash_state,
                       say)
        except _Shutdown:
            say("campaign complete — shutting down")
            return 0
        except _Reject as reject:
            if reject.kind == "campaign":
                say(f"handshake rejected ({reject}); re-handshaking "
                    "without a campaign key")
                campaign_key = None
                continue
            say(f"handshake rejected: {reject}")
            return 2
        except (WireError, OSError) as error:
            failures += 1
            if failures > retry_limit:
                say(f"giving up after {failures} consecutive "
                    f"connection failure(s): {error}")
                return 1
            delay = backoff * (1.0 + random.random())
            say(f"connection lost ({error}); reconnecting in "
                f"{delay:.1f}s")
            time.sleep(delay)
            backoff = min(backoff * 2, 30.0)
        finally:
            stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=1.0)
            batcher.close()
            channel.close()
