"""Multi-host fleet dispatch: socket coordinator and remote workers.

The single-host executor (:mod:`repro.fleet.executor`) already keeps
all resume state per-device and folds telemetry in completion order —
nothing about it cares *where* a work unit runs.  This package adds
the missing transport: the coordinator listens on a TCP socket and
speaks a length-prefixed JSONL protocol, and any number of
``repro fleet worker --connect host:port`` processes (on this host or
any other) lease work units, fetch per-device checkpoints and warm
translation-cache frames over a content-addressed blob channel, run
them with the exact same :func:`~repro.fleet.device.simulate_device`
/ :func:`~repro.fleet.device.simulate_cohort` paths a local worker
uses, and stream results back.

Robustness is the design center, not an afterthought:

* leases carry deadlines — a worker that stops heartbeating (killed,
  wedged, partitioned) has its unit returned to the queue and
  reassigned, which is safe because completion is keyed per-device
  and every record is a pure function of ``(seed, device_id, model)``;
* workers reconnect with exponential backoff plus jitter, and a
  reconnecting worker re-handshakes (campaign key, ``STATE_VERSION``,
  ``DISK_FORMAT``, protocol version) so a stale worker can never feed
  results into the wrong campaign;
* every blob (checkpoint, ``.sbx`` translation store) is requested by
  content hash and verified on receipt — fail-closed, exactly like
  the execution cache's disk-tier ingestion;
* all persistent state stays on the coordinator's disk in the exact
  same files the local path writes, so a campaign run over sockets is
  byte-identical to a local one and kill-and-resume semantics carry
  over unchanged (kill the coordinator, resume with ``--jobs`` or
  ``--listen`` — either converges to the same bytes).

Pieces:

* :mod:`repro.fleet.net.protocol`    — framing, the blob channel, and
  the :class:`~repro.fleet.net.protocol.Channel` wrapper
* :mod:`repro.fleet.net.coordinator` — :class:`SocketTransport`, the
  executor-facing transport that serves the unit queue over TCP
* :mod:`repro.fleet.net.worker`      — the ``repro fleet worker``
  process: connect, handshake, lease, simulate, stream back
"""

from repro.fleet.net.protocol import Channel, PROTO_VERSION, WireError

__all__ = ["Channel", "PROTO_VERSION", "WireError"]
