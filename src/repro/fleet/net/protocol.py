"""Wire framing for fleet dispatch: length-prefixed JSONL + blobs.

Every message on a coordinator/worker connection is one **frame**: a
4-byte big-endian length followed by exactly that many bytes of
canonical JSON (sorted keys, no whitespace — one JSON line).  A frame
whose message carries ``blob_len`` is immediately followed by that
many raw bytes (checkpoint payloads, ``.sbx`` translation frames —
things JSON would bloat by a third in base64), and the message's
``blob_sha`` must be the blob's sha-256: the receiver verifies it and
rejects the frame on mismatch, so the blob channel is
content-addressed and fail-closed end to end.

Parsing is fail-closed everywhere: an out-of-range length prefix
(garbage, or a length field claiming gigabytes), an undecodable or
untyped JSON payload, a connection closed mid-frame (torn frame), or
a blob digest mismatch all raise :class:`WireError` — the connection
is abandoned and the peer's lease/retry machinery takes over.  No
partial frame is ever acted on.

Message vocabulary (the ``type`` field):

========  ==========  ===================================================
type      direction   meaning
========  ==========  ===================================================
hello     w -> c      handshake: proto + STATE_VERSION + DISK_FORMAT +
                      campaign key (None on first contact) + worker id
challenge c -> w      a secret is configured: prove you hold it —
                      reply with ``auth`` over the fresh nonce
auth      w -> c      HMAC-SHA256(secret, nonce) for the challenge
welcome   c -> w      handshake accepted: campaign key, config, cache
                      mode, cohort flag, heartbeat cadence, store offers
reject    c -> w      handshake refused (stale campaign key, version
                      mismatch, failed auth) — the reason says which
lease_req w -> c      give me work
lease     c -> w      a work unit: model, device ids, checkpoint shas
idle      c -> w      no work right now; retry after ``retry_s``
shutdown  c -> w      campaign complete; exit cleanly
blob_get  w -> c      fetch a blob by name + expected sha
blob      c -> w      the blob (raw bytes follow the frame)
blob_missing c -> w   no such blob / content changed — run without it
ckpt      w -> c      one device checkpoint (blob follows); also
                      refreshes the lease deadline
dev_done  w -> c      one device's record — the per-device commit
result    w -> c      unit finished: the worker's stats
profile   w -> c      one unit's cProfile dump (blob follows) when the
                      campaign runs with ``--profile``
batch     w -> c      several coalesced frames in one: ``frames`` holds
                      the sub-messages, one concatenated blob follows
status_req any -> c   one-shot observer: report live campaign state
status    c -> any    the report (workers, queue, rates)
ping      w -> c      heartbeat (any frame refreshes the deadline)
pong      c -> w      heartbeat echo
========  ==========  ===================================================

Two orthogonal wire-level optimizations ride on the same framing —
both negotiated by nothing more than the protocol version, both
fail-closed, and both invisible in the bytes a campaign writes:

* **blob compression** — a sender may pass ``compress=True``; the
  blob travels zlib-deflated (only when that actually shrinks it)
  with ``blob_enc="zlib"`` plus the raw length and digest, and the
  receiver inflates under a hard cap and verifies the *raw* digest,
  so a bomb or a tampered stream drops the connection, never a bad
  blob into the pipeline.
* **frame batching** — a worker may coalesce several report frames
  (``ckpt``/``dev_done``) into one ``batch`` whose sub-messages
  address slices of a single concatenated blob;
  :func:`unpack_batch` re-verifies every slice digest, so a batch
  is exactly as trustworthy as the frames it replaced.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import socket
import struct
import threading
import zlib
from typing import List, Optional, Tuple

from repro.errors import ReproError

#: bump on any incompatible message/framing change; exchanged (and
#: required equal) in the hello/welcome handshake
PROTO_VERSION = 3

#: JSON payloads are small (records, leases); anything bigger than
#: this is a corrupt length field or garbage on the port
MAX_FRAME = 4 * 1024 * 1024

#: blobs carry checkpoints (a few KB) and whole ``.sbx`` stores
#: (bounded by the exec-cache LRU budget, default 64 MB)
MAX_BLOB = 256 * 1024 * 1024

#: blobs smaller than this are not worth a deflate round-trip
_COMPRESS_MIN = 512

_LENGTH = struct.Struct(">I")


class WireError(ReproError):
    """A frame violated the protocol (torn, oversized, undecodable,
    digest mismatch) — fail closed: drop the connection, never act on
    a partial or unverified frame."""


def blob_sha(data: bytes) -> str:
    """Content address of a blob (hex sha-256)."""
    return hashlib.sha256(data).hexdigest()


def auth_mac(secret: bytes, nonce: str) -> str:
    """The ``auth`` frame's proof: HMAC-SHA256 of the coordinator's
    per-connection nonce under the shared secret.  A fresh nonce per
    connection means a recorded handshake replays to nothing."""
    return hmac.new(secret, nonce.encode(), hashlib.sha256).hexdigest()


class Channel:
    """One peer's framed view of a connected socket.

    Sends are serialized by an internal lock so a heartbeat thread and
    the simulating thread can share the connection; receives belong to
    a single reader (each side has exactly one).  ``bytes_in`` /
    ``bytes_out`` feed the coordinator's per-worker attribution.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.bytes_in = 0
        self.bytes_out = 0
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass                      # AF_UNIX socketpair in tests

    def send(self, message: dict, blob: Optional[bytes] = None,
             compress: bool = False) -> None:
        """Send one frame (plus its blob, when given) atomically with
        respect to other senders on this channel.

        ``compress=True`` deflates the blob when that shrinks it; the
        frame then carries the raw length and digest alongside the
        wire-form ones, and :meth:`recv` inflates and re-verifies
        transparently — callers on either side only ever see raw
        bytes."""
        if blob is not None:
            message = dict(message)
            if compress and len(blob) >= _COMPRESS_MIN:
                packed = zlib.compress(blob, 6)
                if len(packed) < len(blob):
                    message["blob_enc"] = "zlib"
                    message["blob_raw_len"] = len(blob)
                    message["blob_raw_sha"] = blob_sha(blob)
                    blob = packed
            message["blob_len"] = len(blob)
            message["blob_sha"] = blob_sha(blob)
        payload = json.dumps(message, sort_keys=True,
                             separators=(",", ":")).encode()
        if len(payload) > MAX_FRAME:
            raise WireError(
                f"outgoing frame of {len(payload)} bytes exceeds "
                f"MAX_FRAME ({MAX_FRAME})")
        with self._send_lock:
            self._sock.sendall(_LENGTH.pack(len(payload)) + payload)
            if blob is not None:
                self._sock.sendall(blob)
            self.bytes_out += _LENGTH.size + len(payload) \
                + (len(blob) if blob is not None else 0)

    def recv(self, timeout: Optional[float] = None
             ) -> Tuple[dict, Optional[bytes]]:
        """Receive one complete, verified frame; returns
        ``(message, blob)`` where ``blob`` is ``None`` for blobless
        messages.  Raises :class:`WireError` on any protocol
        violation, ``socket.timeout``/``OSError`` on transport
        failure."""
        self._sock.settimeout(timeout)
        (length,) = _LENGTH.unpack(self._recv_exact(_LENGTH.size))
        if not 0 < length <= MAX_FRAME:
            raise WireError(
                f"frame length {length} outside (0, {MAX_FRAME}] — "
                "garbage or a corrupt length prefix")
        payload = self._recv_exact(length)
        try:
            message = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise WireError("frame payload is not valid JSON") from None
        if not isinstance(message, dict) or \
                not isinstance(message.get("type"), str):
            raise WireError("frame payload is not a typed message")
        blob = None
        if "blob_len" in message:
            blob_len = message["blob_len"]
            if not isinstance(blob_len, int) or \
                    not 0 <= blob_len <= MAX_BLOB:
                raise WireError(
                    f"blob length {blob_len!r} outside [0, {MAX_BLOB}]")
            blob = self._recv_exact(blob_len)
            if blob_sha(blob) != message.get("blob_sha"):
                raise WireError(
                    "blob digest mismatch — dropping the frame "
                    "(content-addressed channel is fail-closed)")
            if "blob_enc" in message:
                blob = _inflate_blob(message, blob)
        return message, blob

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        got = 0
        while got < count:
            chunk = self._sock.recv(min(65536, count - got))
            if not chunk:
                raise WireError(
                    "connection closed mid-frame (torn frame)"
                    if got or chunks else "connection closed")
            chunks.append(chunk)
            got += len(chunk)
        self.bytes_in += count
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def _inflate_blob(message: dict, blob: bytes) -> bytes:
    """Inflate a ``blob_enc="zlib"`` blob, fail-closed: the declared
    raw length is a hard cap (a deflate bomb trips it mid-inflate),
    the stream must end exactly at that length with no trailing
    garbage, and the raw digest must match."""
    if message["blob_enc"] != "zlib":
        raise WireError(
            f"unknown blob encoding {message['blob_enc']!r}")
    raw_len = message.get("blob_raw_len")
    if not isinstance(raw_len, int) or not 0 <= raw_len <= MAX_BLOB:
        raise WireError(
            f"declared raw blob length {raw_len!r} outside "
            f"[0, {MAX_BLOB}]")
    inflater = zlib.decompressobj()
    try:
        raw = inflater.decompress(blob, raw_len)
    except zlib.error as error:
        raise WireError(f"blob inflate failed: {error}") from None
    if not inflater.eof or inflater.unconsumed_tail or \
            inflater.unused_data or len(raw) != raw_len:
        raise WireError(
            "compressed blob does not inflate to exactly its "
            "declared length — bomb or truncation, dropping frame")
    if blob_sha(raw) != message.get("blob_raw_sha"):
        raise WireError(
            "raw blob digest mismatch after inflate — fail closed")
    return raw


def pack_batch(frames: List[Tuple[dict, Optional[bytes]]]
               ) -> Tuple[dict, Optional[bytes]]:
    """Coalesce ``(message, blob)`` frames into one ``batch`` frame.

    Sub-messages with a blob gain ``blob_len``/``blob_sha`` addressing
    their slice of the single concatenated blob; sub-messages without
    one travel untouched.  The result goes out through a normal
    :meth:`Channel.send` (optionally compressed — the slice digests
    address raw bytes, so outer compression is transparent)."""
    subs = []
    blobs = []
    for message, blob in frames:
        if blob is not None:
            message = dict(message)
            message["blob_len"] = len(blob)
            message["blob_sha"] = blob_sha(blob)
            blobs.append(blob)
        subs.append(message)
    combined = b"".join(blobs) if blobs else None
    return {"type": "batch", "frames": subs}, combined


def unpack_batch(message: dict, blob: Optional[bytes]
                 ) -> List[Tuple[dict, Optional[bytes]]]:
    """Split a ``batch`` frame back into its constituent frames,
    re-verifying every sub-blob's digest against its slice — a batch
    is exactly as trustworthy as the frames it replaced.  Raises
    :class:`WireError` on any malformed sub-message, slice overrun,
    digest mismatch, or leftover blob bytes."""
    subs = message.get("frames")
    if not isinstance(subs, list) or not subs:
        raise WireError("batch frame without a non-empty frame list")
    data = blob or b""
    offset = 0
    frames: List[Tuple[dict, Optional[bytes]]] = []
    for sub in subs:
        if not isinstance(sub, dict) or \
                not isinstance(sub.get("type"), str) or \
                sub["type"] == "batch":
            raise WireError("batch contains a malformed sub-message")
        piece = None
        if "blob_len" in sub:
            piece_len = sub["blob_len"]
            if not isinstance(piece_len, int) or \
                    not 0 <= piece_len <= MAX_BLOB or \
                    offset + piece_len > len(data):
                raise WireError(
                    "batch sub-blob overruns the combined blob")
            piece = data[offset:offset + piece_len]
            offset += piece_len
            if blob_sha(piece) != sub.get("blob_sha"):
                raise WireError(
                    "batch sub-blob digest mismatch — fail closed")
        frames.append((sub, piece))
    if offset != len(data):
        raise WireError(
            f"batch blob has {len(data) - offset} unclaimed bytes")
    return frames
