"""Wire framing for fleet dispatch: length-prefixed JSONL + blobs.

Every message on a coordinator/worker connection is one **frame**: a
4-byte big-endian length followed by exactly that many bytes of
canonical JSON (sorted keys, no whitespace — one JSON line).  A frame
whose message carries ``blob_len`` is immediately followed by that
many raw bytes (checkpoint payloads, ``.sbx`` translation frames —
things JSON would bloat by a third in base64), and the message's
``blob_sha`` must be the blob's sha-256: the receiver verifies it and
rejects the frame on mismatch, so the blob channel is
content-addressed and fail-closed end to end.

Parsing is fail-closed everywhere: an out-of-range length prefix
(garbage, or a length field claiming gigabytes), an undecodable or
untyped JSON payload, a connection closed mid-frame (torn frame), or
a blob digest mismatch all raise :class:`WireError` — the connection
is abandoned and the peer's lease/retry machinery takes over.  No
partial frame is ever acted on.

Message vocabulary (the ``type`` field):

========  ==========  ===================================================
type      direction   meaning
========  ==========  ===================================================
hello     w -> c      handshake: proto + STATE_VERSION + DISK_FORMAT +
                      campaign key (None on first contact) + worker id
challenge c -> w      a secret is configured: prove you hold it —
                      reply with ``auth`` over the fresh nonce
auth      w -> c      HMAC-SHA256(secret, nonce) for the challenge
welcome   c -> w      handshake accepted: campaign key, config, cache
                      mode, cohort flag, heartbeat cadence, store offers
reject    c -> w      handshake refused (stale campaign key, version
                      mismatch, failed auth) — the reason says which
lease_req w -> c      give me work
lease     c -> w      a work unit: model, device ids, checkpoint shas
idle      c -> w      no work right now; retry after ``retry_s``
shutdown  c -> w      campaign complete; exit cleanly
blob_get  w -> c      fetch a blob by name + expected sha
blob      c -> w      the blob (raw bytes follow the frame)
blob_missing c -> w   no such blob / content changed — run without it
ckpt      w -> c      one device checkpoint (blob follows); also
                      refreshes the lease deadline
dev_done  w -> c      one device's record — the per-device commit
result    w -> c      unit finished: the worker's stats
ping      w -> c      heartbeat (any frame refreshes the deadline)
pong      c -> w      heartbeat echo
========  ==========  ===================================================
"""

from __future__ import annotations

import hashlib
import hmac
import json
import socket
import struct
import threading
from typing import Optional, Tuple

from repro.errors import ReproError

#: bump on any incompatible message/framing change; exchanged (and
#: required equal) in the hello/welcome handshake
PROTO_VERSION = 2

#: JSON payloads are small (records, leases); anything bigger than
#: this is a corrupt length field or garbage on the port
MAX_FRAME = 4 * 1024 * 1024

#: blobs carry checkpoints (a few KB) and whole ``.sbx`` stores
#: (bounded by the exec-cache LRU budget, default 64 MB)
MAX_BLOB = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ReproError):
    """A frame violated the protocol (torn, oversized, undecodable,
    digest mismatch) — fail closed: drop the connection, never act on
    a partial or unverified frame."""


def blob_sha(data: bytes) -> str:
    """Content address of a blob (hex sha-256)."""
    return hashlib.sha256(data).hexdigest()


def auth_mac(secret: bytes, nonce: str) -> str:
    """The ``auth`` frame's proof: HMAC-SHA256 of the coordinator's
    per-connection nonce under the shared secret.  A fresh nonce per
    connection means a recorded handshake replays to nothing."""
    return hmac.new(secret, nonce.encode(), hashlib.sha256).hexdigest()


class Channel:
    """One peer's framed view of a connected socket.

    Sends are serialized by an internal lock so a heartbeat thread and
    the simulating thread can share the connection; receives belong to
    a single reader (each side has exactly one).  ``bytes_in`` /
    ``bytes_out`` feed the coordinator's per-worker attribution.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.bytes_in = 0
        self.bytes_out = 0
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass                      # AF_UNIX socketpair in tests

    def send(self, message: dict, blob: Optional[bytes] = None) -> None:
        """Send one frame (plus its blob, when given) atomically with
        respect to other senders on this channel."""
        if blob is not None:
            message = dict(message)
            message["blob_len"] = len(blob)
            message["blob_sha"] = blob_sha(blob)
        payload = json.dumps(message, sort_keys=True,
                             separators=(",", ":")).encode()
        if len(payload) > MAX_FRAME:
            raise WireError(
                f"outgoing frame of {len(payload)} bytes exceeds "
                f"MAX_FRAME ({MAX_FRAME})")
        with self._send_lock:
            self._sock.sendall(_LENGTH.pack(len(payload)) + payload)
            if blob is not None:
                self._sock.sendall(blob)
            self.bytes_out += _LENGTH.size + len(payload) \
                + (len(blob) if blob is not None else 0)

    def recv(self, timeout: Optional[float] = None
             ) -> Tuple[dict, Optional[bytes]]:
        """Receive one complete, verified frame; returns
        ``(message, blob)`` where ``blob`` is ``None`` for blobless
        messages.  Raises :class:`WireError` on any protocol
        violation, ``socket.timeout``/``OSError`` on transport
        failure."""
        self._sock.settimeout(timeout)
        (length,) = _LENGTH.unpack(self._recv_exact(_LENGTH.size))
        if not 0 < length <= MAX_FRAME:
            raise WireError(
                f"frame length {length} outside (0, {MAX_FRAME}] — "
                "garbage or a corrupt length prefix")
        payload = self._recv_exact(length)
        try:
            message = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise WireError("frame payload is not valid JSON") from None
        if not isinstance(message, dict) or \
                not isinstance(message.get("type"), str):
            raise WireError("frame payload is not a typed message")
        blob = None
        if "blob_len" in message:
            blob_len = message["blob_len"]
            if not isinstance(blob_len, int) or \
                    not 0 <= blob_len <= MAX_BLOB:
                raise WireError(
                    f"blob length {blob_len!r} outside [0, {MAX_BLOB}]")
            blob = self._recv_exact(blob_len)
            if blob_sha(blob) != message.get("blob_sha"):
                raise WireError(
                    "blob digest mismatch — dropping the frame "
                    "(content-addressed channel is fail-closed)")
        return message, blob

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        got = 0
        while got < count:
            chunk = self._sock.recv(min(65536, count - got))
            if not chunk:
                raise WireError(
                    "connection closed mid-frame (torn frame)"
                    if got or chunks else "connection closed")
            chunks.append(chunk)
            got += len(chunk)
        self.bytes_in += count
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
