"""The coordinator's side of socket dispatch: :class:`SocketTransport`.

This is a drop-in peer of the executor's ``LocalTransport``: it
receives each model's planned units, serves them as **leases** to any
connected ``repro fleet worker``, and yields ``(devices, t_submit,
result)`` rows in completion order — so the executor's fold, merge,
and profile code runs unchanged and the campaign output is
byte-identical to a local run.

Failure model (the part worth reading twice):

* a lease carries a deadline — ``lease_timeout_s`` since the owning
  connection's last frame (any frame: heartbeat pings included).  A
  worker that is killed, wedged, or partitioned stops refreshing and
  its lease expires; the unit's *unfinished* devices go back on the
  queue for the next ``lease_req``.
* a dropped connection requeues immediately — no need to wait out the
  deadline when the socket already said goodbye.
* reassignment is idempotent because completion is **per-device**:
  every ``dev_done`` commits one device's record to the same on-disk
  unit stream the local path appends to, and a requeued lease carries
  only devices without a committed record.  If a presumed-dead worker
  limps home later, its duplicate records are byte-identical (the
  determinism contract) and are dropped at the door.
* all persistent state — unit streams, per-device checkpoints,
  ``campaign.json`` — lives on the coordinator's disk in exactly the
  files the local path uses, so killing the coordinator and resuming
  (with ``--jobs`` *or* ``--listen``) behaves identically.

Trust model: the listen port may be reachable by peers that are not
fleet workers at all, so nothing a client sends is ever *executed* —
checkpoint frames are deserialized with the restricted
:func:`~repro.safeload.safe_loads` (inside
:func:`~repro.fleet.snapshot.parse_checkpoint`, which also checks the
campaign key + device stamp) before touching disk, blob names are
validated against the model registry before becoming paths, and blobs
served to workers (checkpoint payloads, ``.sbx`` translation stores)
go out content-addressed so the other end can verify them.  On top of
that, a shared ``secret`` turns the handshake into HMAC
challenge/response — required for any non-loopback bind, because
checkpoint *content* and ``dev_done`` records still shape campaign
output and must come from trusted workers.
"""

from __future__ import annotations

import hmac
import json
import os
import queue
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.errors import ReproError
from repro.fleet import tracetier
from repro.fleet.executor import _atomic_write, _ckpt_path, \
    _shards_dir, _unit_stream_path, _unlink_quiet
from repro.fleet.net.protocol import Channel, PROTO_VERSION, WireError, \
    auth_mac, blob_sha, unpack_batch
from repro.fleet.snapshot import STATE_VERSION, parse_checkpoint
from repro.fleet.telemetry import MODELS_BY_KEY, record_line
from repro.msp430.execcache import DISK_FORMAT, list_store_files, \
    read_store_file

#: a cProfile dump for one unit is tens of KB; anything bigger is not
#: a profile
_MAX_PROFILE = 8 * 1024 * 1024

#: per-unit stats the coordinator accumulates for the live status view
_UNIT_STAT_KEYS = ("cohort_replayed", "cohort_executed",
                   "cohort_forks", "cohort_rejoins", "trace_hits",
                   "trace_misses", "trace_published")


def _is_loopback(host: str) -> bool:
    """Conservatively: only names that always resolve to the local
    host count (an empty host binds every interface)."""
    return host in ("localhost", "::1") or host.startswith("127.")


class _Lease:
    """One granted work unit: who holds it, what is left of it, and
    when its owner was last heard from."""

    __slots__ = ("lease_id", "model", "devices", "first", "t_submit",
                 "worker", "last_seen")

    def __init__(self, lease_id: int, model: str, devices: List[int],
                 first: int, t_submit: float, worker: str):
        self.lease_id = lease_id
        self.model = model
        self.devices = devices
        self.first = first
        self.t_submit = t_submit
        self.worker = worker
        self.last_seen = time.monotonic()


class _ModelState:
    """Queue, leases, and committed records for the model currently
    being dispatched."""

    def __init__(self, model_key: str, units: List[List[int]],
                 t_submit: float):
        self.model = model_key
        #: (first_device, remaining_devices, t_submit) — all units are
        #: "submitted" the moment dispatch starts, like the local pool
        self.queue: deque = deque(
            (unit[0], list(unit), t_submit) for unit in units)
        self.total = sum(len(unit) for unit in units)
        self.records: Dict[int, dict] = {}
        self.yielded: Set[int] = set()
        self.leases: Dict[int, _Lease] = {}
        self.results: "queue.Queue[tuple]" = queue.Queue()
        self.active = True


def _zero_stats(devices: List[int], now: float) -> dict:
    """Profile stats for a synthetic completion row — devices whose
    records arrived via ``dev_done`` but whose unit's ``result`` frame
    never did (the worker died after committing them)."""
    return {"devices": list(devices), "t_start": now, "t_end": now,
            "ckpt_flushes": 0, "ckpt_stall_s": 0.0, "ckpt_bytes": 0,
            "cohort_replayed": 0, "cohort_executed": 0,
            "cohort_forks": 0, "cohort_rejoins": 0, "trace_hits": 0,
            "trace_misses": 0, "trace_published": 0, "worker": None}


class SocketTransport:
    """Serve the unit queue over TCP to remote fleet workers.

    ``port=0`` binds an ephemeral port; the bound address is written
    to ``<out_dir>/coordinator.addr`` at campaign open so workers
    launched by scripts and tests can discover it.
    """

    kind = "socket"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_timeout_s: float = 30.0,
                 heartbeat_s: float = 5.0,
                 idle_retry_s: float = 1.0,
                 secret: Optional[bytes] = None):
        if lease_timeout_s <= 0:
            raise ReproError(
                f"lease timeout must be positive (got {lease_timeout_s})")
        if heartbeat_s <= 0:
            raise ReproError(
                f"heartbeat cadence must be positive (got "
                f"{heartbeat_s}) — workers sleep between pings")
        if idle_retry_s < 0:
            raise ReproError(
                f"idle retry must be >= 0 (got {idle_retry_s})")
        if secret is None and not _is_loopback(host):
            raise ReproError(
                f"refusing to listen on non-loopback {host!r} without "
                "a shared secret: anyone who can reach the port could "
                "join the fleet and feed records into the campaign — "
                "pass --secret-file (or set REPRO_FLEET_SECRET) on "
                "both ends, or bind 127.0.0.1")
        self.host = host
        self.port = port
        self.secret = secret
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_s = heartbeat_s
        self.idle_retry_s = idle_retry_s
        self.address: Optional[tuple] = None
        self._campaign: Optional[dict] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._channels: List[tuple] = []       # (channel, worker_id)
        self._lock = threading.RLock()
        self._state: Optional[_ModelState] = None
        self._lease_counter = 0
        self._workers: Dict[str, dict] = {}
        self._requeues = 0
        self._shutdown = False
        #: hashed once per campaign at open, not once per handshake —
        #: re-offering a 40+ MB exec cache to every reconnect was a
        #: measurable per-worker startup tax
        self._store_offers: List[dict] = []
        self._trace_offers: List[dict] = []
        self._status_path: Optional[Path] = None
        self._status_at = 0.0
        self._unit_totals: Dict[str, int] = {
            key: 0 for key in _UNIT_STAT_KEYS}

    # -- executor-facing transport API -----------------------------------
    def open_campaign(self, campaign: dict) -> None:
        self._campaign = campaign
        self._store_offers = list_store_files()
        # trace segments only replay inside cohort lockstep, so a
        # cohort-off campaign would hash and ship .tbx stores that no
        # worker can use
        self._trace_offers = (
            tracetier.list_store_files() if campaign.get("cohort")
            else [])
        self._listener = socket.create_server((self.host, self.port))
        self.address = self._listener.getsockname()[:2]
        out_dir = Path(campaign["out_dir"])
        self._status_path = out_dir / "status.json"
        _atomic_write(out_dir / "coordinator.addr",
                      f"{self.address[0]}:{self.address[1]}\n".encode())
        campaign["say"](
            f"coordinator listening on "
            f"{self.address[0]}:{self.address[1]}")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True)
        self._accept_thread.start()

    def run_units(self, model_key: str, units: List[List[int]]):
        if not units:
            return
        st = _ModelState(model_key, units, time.time())
        with self._lock:
            self._state = st
        try:
            while True:
                with self._lock:
                    if len(st.records) >= st.total:
                        break
                try:
                    devices, t_submit, stats = st.results.get(
                        timeout=0.25)
                except queue.Empty:
                    pass
                else:
                    row = self._fresh_row(st, devices, t_submit, stats)
                    if row is not None:
                        yield row
                self._expire_leases(st)
                self._write_status()
        finally:
            with self._lock:
                st.active = False
                self._state = None
        # drain straggler result frames, then cover any devices whose
        # records landed but whose unit's result frame never arrived
        while True:
            try:
                devices, t_submit, stats = st.results.get_nowait()
            except queue.Empty:
                break
            row = self._fresh_row(st, devices, t_submit, stats)
            if row is not None:
                yield row
        with self._lock:
            leftover = {device: record
                        for device, record in st.records.items()
                        if device not in st.yielded}
            st.yielded.update(leftover)
        if leftover:
            devices = sorted(leftover)
            now = time.time()
            yield devices, now, {"records": leftover,
                                 "stats": _zero_stats(devices, now)}

    def worker_stats(self) -> dict:
        with self._lock:
            # flush live connections' byte counters into the rows
            for channel, worker_id in self._channels:
                self._fold_bytes(channel, worker_id)
            workers = {worker_id: dict(row) for worker_id, row
                       in self._workers.items()}
        return {"workers": workers, "requeues": self._requeues}

    # -- live status --------------------------------------------------------
    def _status_snapshot(self) -> dict:
        """The live campaign view served to ``status_req`` observers
        and mirrored into ``status.json``."""
        with self._lock:
            for channel, worker_id in self._channels:
                self._fold_bytes(channel, worker_id)
            st = self._state
            campaign = self._campaign
            trace = self._unit_totals
            lookups = trace["trace_hits"] + trace["trace_misses"]
            return {
                "type": "status",
                "campaign": campaign["config_key"]
                if campaign is not None else None,
                "model": st.model if st is not None else None,
                "queue_depth": len(st.queue) if st is not None else 0,
                "active_leases": len(st.leases)
                if st is not None else 0,
                "devices_done": len(st.records)
                if st is not None else 0,
                "devices_total": st.total if st is not None else 0,
                "requeues": self._requeues,
                "connections": len(self._channels),
                "workers": {worker_id: dict(row) for worker_id, row
                            in self._workers.items()},
                "cohort": dict(trace),
                "trace_hit_rate": round(
                    trace["trace_hits"] / lookups, 4)
                if lookups else None,
            }

    def _write_status(self, force: bool = False) -> None:
        """Mirror the live view to ``<out_dir>/status.json`` about
        once a second, atomically — ``repro fleet status <out-dir>``
        reads it without touching the port."""
        if self._status_path is None:
            return
        now = time.monotonic()
        if not force and now - self._status_at < 1.0:
            return
        self._status_at = now
        status = self._status_snapshot()
        status["updated"] = time.time()
        try:
            _atomic_write(self._status_path,
                          (json.dumps(status, indent=2, sort_keys=True)
                           + "\n").encode())
        except OSError:
            pass                        # the view is best-effort

    def close(self) -> None:
        with self._lock:
            self._shutdown = True
            channels = list(self._channels)
        # a push, not a reply: idle workers pick it up on their next
        # recv and exit 0 instead of discovering a dead port
        for channel, _worker_id in channels:
            try:
                channel.send({"type": "shutdown"})
            except (WireError, OSError):
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + max(2.0, self.idle_retry_s + 1.0)
        for thread in self._handlers:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._lock:
            channels = list(self._channels)
        for channel, _worker_id in channels:
            channel.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        self._write_status(force=True)

    # -- completion-order plumbing ----------------------------------------
    def _fresh_row(self, st: _ModelState, devices: List[int],
                   t_submit: float, stats: dict) -> Optional[tuple]:
        """Deduplicate result rows per device: after a reassignment
        both the presumed-dead worker and its replacement may report,
        and each device must be folded exactly once."""
        with self._lock:
            fresh = {device: st.records[device] for device in devices
                     if device in st.records
                     and device not in st.yielded}
            st.yielded.update(fresh)
        if not fresh:
            return None
        return devices, t_submit, {"records": fresh, "stats": stats}

    def _expire_leases(self, st: _ModelState) -> None:
        now = time.monotonic()
        with self._lock:
            for lease_id, lease in list(st.leases.items()):
                if now - lease.last_seen <= self.lease_timeout_s:
                    continue
                del st.leases[lease_id]
                self._requeue(st, lease)
                row = self._workers.get(lease.worker)
                if row is not None:
                    row["lease_timeouts"] += 1
                self._campaign["say"](
                    f"{st.model}: lease {lease.lease_id} "
                    f"(unit {lease.first}) on {lease.worker!r} missed "
                    f"its deadline — requeued")

    def _requeue(self, st: _ModelState, lease: _Lease) -> None:
        """Return a lease's unfinished devices to the queue (callers
        hold the lock).  Finished devices stay finished — completion
        is per-device, which is what makes reassignment idempotent."""
        remaining = [device for device in lease.devices
                     if device not in st.records]
        if remaining:
            st.queue.append((lease.first, remaining, lease.t_submit))
        self._requeues += 1

    # -- connection handling ----------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return                  # listener closed
            thread = threading.Thread(
                target=self._serve, args=(conn, addr),
                name=f"fleet-conn-{addr[1]}", daemon=True)
            with self._lock:
                self._handlers.append(thread)
            thread.start()

    def _handshake(self, channel: Channel) -> Optional[str]:
        """Run the hello/welcome exchange; returns the worker id, or
        ``None`` after sending a reject."""
        hello, _ = channel.recv(timeout=10.0)
        if hello.get("type") != "hello":
            raise WireError(
                f"expected hello, got {hello.get('type')!r}")
        versions = (hello.get("proto"), hello.get("state_version"),
                    hello.get("disk_format"))
        if versions != (PROTO_VERSION, STATE_VERSION, DISK_FORMAT):
            channel.send({
                "type": "reject", "kind": "version",
                "reason": (
                    f"version mismatch: worker (proto, state, disk) "
                    f"= {versions}, coordinator = "
                    f"{(PROTO_VERSION, STATE_VERSION, DISK_FORMAT)}")})
            return None
        config_key = self._campaign["config_key"]
        if hello.get("campaign") not in (None, config_key):
            channel.send({
                "type": "reject", "kind": "campaign",
                "reason": (
                    f"stale campaign key {hello.get('campaign')!r} — "
                    f"this coordinator runs {config_key!r}; drop the "
                    "key and re-handshake")})
            return None
        if self.secret is not None:
            nonce = os.urandom(32).hex()
            channel.send({"type": "challenge", "nonce": nonce})
            reply, _ = channel.recv(timeout=10.0)
            if reply.get("type") != "auth" or not hmac.compare_digest(
                    str(reply.get("mac", "")),
                    auth_mac(self.secret, nonce)):
                channel.send({
                    "type": "reject", "kind": "auth",
                    "reason": (
                        "shared-secret authentication failed — this "
                        "coordinator requires the fleet secret "
                        "(--secret-file / REPRO_FLEET_SECRET)")})
                return None
        if hello.get("role") == "status":
            # a one-shot observer: authenticated like a worker (the
            # view names hosts and progress), never granted work
            channel.send(self._status_snapshot())
            return None
        worker_id = str(hello.get("worker") or "anonymous")
        channel.send({
            "type": "welcome",
            "campaign": config_key,
            "config": self._campaign["config_dict"],
            "cache_mode": self._campaign["cache_mode"],
            "cohort": self._campaign["cohort"],
            "rejoin": self._campaign.get("rejoin", True),
            "profile": self._campaign.get("profile_dir") is not None,
            "heartbeat_s": self.heartbeat_s,
            "idle_retry_s": self.idle_retry_s,
            "lease_timeout_s": self.lease_timeout_s,
            "stores": self._store_offers,
            "trace_stores": self._trace_offers,
        })
        with self._lock:
            row = self._workers.get(worker_id)
            if row is None:
                self._workers[worker_id] = {
                    "id": worker_id,
                    "host": str(hello.get("host") or "?"),
                    "units_run": 0, "devices_done": 0,
                    "bytes_to_worker": 0, "bytes_from_worker": 0,
                    "reconnects": 0, "lease_timeouts": 0,
                }
            else:
                row["reconnects"] += 1
            self._channels.append((channel, worker_id))
        self._campaign["say"](
            f"worker {worker_id!r} connected from "
            f"{self._workers[worker_id]['host']}")
        return worker_id

    def _serve(self, conn: socket.socket, addr) -> None:
        channel = Channel(conn)
        worker_id: Optional[str] = None
        held: Set[int] = set()
        try:
            worker_id = self._handshake(channel)
            if worker_id is None:
                return
            recv_timeout = max(self.lease_timeout_s,
                               4 * self.heartbeat_s)
            while True:
                message, blob = channel.recv(timeout=recv_timeout)
                self._refresh(held)
                mtype = message["type"]
                if mtype == "ping":
                    channel.send({"type": "pong"})
                elif mtype == "lease_req":
                    if not self._grant(channel, worker_id, held):
                        return          # shutdown sent
                elif mtype == "blob_get":
                    self._serve_blob(channel, message)
                elif mtype == "ckpt":
                    self._store_checkpoint(message, blob)
                elif mtype == "dev_done":
                    self._commit_device(message, worker_id)
                elif mtype == "result":
                    self._finish_lease(message, worker_id, held)
                elif mtype == "batch":
                    self._handle_batch(message, blob, worker_id, held)
                elif mtype == "profile":
                    self._store_profile(message, blob)
                elif mtype == "status_req":
                    channel.send(self._status_snapshot())
                else:
                    raise WireError(
                        f"unexpected message type {mtype!r}")
        except (WireError, OSError):
            pass                        # fall through to requeue
        finally:
            with self._lock:
                st = self._state
                if st is not None:
                    for lease_id in held:
                        lease = st.leases.pop(lease_id, None)
                        if lease is not None:
                            self._requeue(st, lease)
                if worker_id is not None:
                    self._fold_bytes(channel, worker_id)
                self._channels = [
                    (ch, wid) for ch, wid in self._channels
                    if ch is not channel]
            channel.close()

    def _refresh(self, held: Set[int]) -> None:
        """Any frame from a connection refreshes its leases."""
        now = time.monotonic()
        with self._lock:
            st = self._state
            if st is None:
                return
            for lease_id in held:
                lease = st.leases.get(lease_id)
                if lease is not None:
                    lease.last_seen = now

    def _fold_bytes(self, channel: Channel, worker_id: str) -> None:
        """Move the channel's byte counters into the worker row
        (callers hold the lock); counters reset so a later fold never
        double-counts."""
        row = self._workers.get(worker_id)
        if row is None:
            return
        row["bytes_to_worker"] += channel.bytes_out
        row["bytes_from_worker"] += channel.bytes_in
        channel.bytes_out = 0
        channel.bytes_in = 0

    # -- message handlers --------------------------------------------------
    def _grant(self, channel: Channel, worker_id: str,
               held: Set[int]) -> bool:
        """Answer a ``lease_req``: lease, idle, or (on campaign end)
        shutdown.  Returns False when the connection should close."""
        with self._lock:
            if self._shutdown:
                grant = "shutdown"
            else:
                st = self._state
                grant = None
                while st is not None and st.active and st.queue:
                    first, devices, t_submit = st.queue.popleft()
                    devices = [device for device in devices
                               if device not in st.records]
                    if not devices:
                        continue
                    self._lease_counter += 1
                    lease = _Lease(self._lease_counter, st.model,
                                   devices, first, t_submit, worker_id)
                    st.leases[lease.lease_id] = lease
                    held.add(lease.lease_id)
                    ckpts = {}
                    for device in devices:
                        path = _ckpt_path(
                            Path(self._campaign["out_dir"]),
                            st.model, device)
                        try:
                            ckpts[str(device)] = blob_sha(
                                path.read_bytes())
                        except OSError:
                            pass        # no checkpoint: fresh start
                    grant = {"type": "lease", "lease": lease.lease_id,
                             "model": st.model, "devices": devices,
                             "first": first, "ckpts": ckpts}
                    break
        if grant == "shutdown":
            channel.send({"type": "shutdown"})
            return False
        if grant is None:
            channel.send({"type": "idle",
                          "retry_s": self.idle_retry_s})
        else:
            channel.send(grant)
        return True

    def _serve_blob(self, channel: Channel, message: dict) -> None:
        """Content-addressed blob fetch: the name says what, the sha
        says which version; anything else is ``blob_missing``."""
        name = str(message.get("name", ""))
        want_sha = message.get("sha")
        data: Optional[bytes] = None
        if name.startswith("ckpt:"):
            try:
                _tag, model_key, device = name.split(":", 2)
                if model_key not in MODELS_BY_KEY:
                    raise ValueError(model_key)   # path-shaped names
                path = _ckpt_path(Path(self._campaign["out_dir"]),
                                  model_key, int(device))
                with self._lock:
                    data = path.read_bytes()
            except (ValueError, OSError):
                data = None
        elif name.startswith("sbx:"):
            data = read_store_file(name[len("sbx:"):])
        elif name.startswith("tbx:"):
            data = tracetier.read_store_file(name[len("tbx:"):])
        if data is None or blob_sha(data) != want_sha:
            channel.send({"type": "blob_missing", "name": name})
            return
        channel.send({"type": "blob", "name": name}, blob=data,
                     compress=bool(message.get("zip")))

    def _handle_batch(self, message: dict, blob: Optional[bytes],
                      worker_id: str, held: Set[int]) -> None:
        """Unpack a coalesced frame and dispatch its sub-frames in
        order.  Only report-shaped frames may batch — anything that
        expects a reply (lease_req, blob_get, ping) must go direct,
        and anything else drops the connection."""
        for sub, piece in unpack_batch(message, blob):
            subtype = sub["type"]
            if subtype == "ckpt":
                self._store_checkpoint(sub, piece)
            elif subtype == "dev_done":
                self._commit_device(sub, worker_id)
            elif subtype == "result":
                self._finish_lease(sub, worker_id, held)
            elif subtype == "profile":
                self._store_profile(sub, piece)
            else:
                raise WireError(
                    f"batch may not carry {subtype!r} frames")

    def _store_profile(self, message: dict,
                       blob: Optional[bytes]) -> None:
        """Land one remote unit's cProfile dump under the same name
        the local pool writes, so ``--profile`` output is
        transport-agnostic.  Name parts are validated against the
        model registry before becoming a path; dumps are size-capped
        and landed atomically."""
        if blob is None or not blob or len(blob) > _MAX_PROFILE:
            return
        profile_dir = self._campaign.get("profile_dir")
        if profile_dir is None:
            return                      # campaign not profiling
        model_key = message.get("model")
        first = message.get("first")
        if model_key not in MODELS_BY_KEY or \
                not isinstance(first, int) or not 0 <= first < 10**5:
            return
        path = Path(profile_dir) / f"{model_key}-u{first:05d}.prof"
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(path, blob)

    def _store_checkpoint(self, message: dict,
                          blob: Optional[bytes]) -> None:
        """Validate and land one device checkpoint — same file, same
        atomic rename as a local worker's write."""
        if blob is None:
            return
        with self._lock:
            st = self._state
            if st is None or not st.active or \
                    message.get("model") != st.model:
                return                  # stale frame for a done model
            device = message.get("device")
            if not isinstance(device, int) or device in st.records:
                return                  # the record supersedes it
            try:
                parse_checkpoint(blob, self._campaign["config_key"],
                                 device)
            except Exception:
                return                  # fail closed: never land it
            out_dir = Path(self._campaign["out_dir"])
            _shards_dir(out_dir).mkdir(parents=True, exist_ok=True)
            _atomic_write(_ckpt_path(out_dir, st.model, device), blob)

    def _commit_device(self, message: dict, worker_id: str) -> None:
        """One device finished: append its record to the unit stream
        (the durable per-device commit), drop its checkpoint, and
        count it toward model completion."""
        with self._lock:
            st = self._state
            if st is None or not st.active or \
                    message.get("model") != st.model:
                return
            device = message.get("device")
            record = message.get("record")
            first = message.get("first")
            if not isinstance(device, int) or \
                    not isinstance(record, dict) or \
                    not isinstance(first, int):
                return
            if device in st.records:
                return                  # duplicate from a stale lease
            out_dir = Path(self._campaign["out_dir"])
            _shards_dir(out_dir).mkdir(parents=True, exist_ok=True)
            stream_path = _unit_stream_path(out_dir, st.model, first)
            with stream_path.open("a") as stream:
                stream.write(record_line(record))
            st.records[device] = record
            _unlink_quiet(_ckpt_path(out_dir, st.model, device))
            row = self._workers.get(worker_id)
            if row is not None:
                row["devices_done"] += 1

    def _finish_lease(self, message: dict, worker_id: str,
                      held: Set[int]) -> None:
        with self._lock:
            st = self._state
            lease_id = message.get("lease")
            held.discard(lease_id)
            stats = message.get("stats")
            if st is None or not isinstance(stats, dict) or \
                    message.get("model") != st.model:
                return
            lease = st.leases.pop(lease_id, None)
            row = self._workers.get(worker_id)
            if row is not None:
                row["units_run"] += 1
            for key in _UNIT_STAT_KEYS:
                value = stats.get(key)
                if isinstance(value, int):
                    self._unit_totals[key] += value
            if lease is not None:
                st.results.put((lease.devices, lease.t_submit, stats))
            else:
                # the lease expired and was reassigned, but the unit
                # did finish here — records were already committed
                # per-device; the row only feeds the profile
                st.results.put((list(stats.get("devices", [])),
                                time.time(), stats))
