"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``build``        run the AFT over one or more ``.mc`` app sources and
                 write an Intel HEX firmware image plus a map file
``run``          build (or reuse) a firmware and dispatch a handler
``disasm``       disassemble an app or symbol from a built firmware
``experiments``  regenerate the paper's tables and figures
``suite``        simulate the nine-app wearable for N seconds
``fleet``        sharded multi-device campaigns (``fleet run``)
``fuzz``         differential fuzzing + fault-injection attack matrix

Handlers default to every non-static function when ``--handlers`` is
omitted, which is convenient for quick runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.aft import AftPipeline, AppSource, IsolationModel
from repro.asm import intelhex
from repro.errors import ReproError

_MODEL_NAMES = {
    "none": IsolationModel.NO_ISOLATION,
    "feature-limited": IsolationModel.FEATURE_LIMITED,
    "software-only": IsolationModel.SOFTWARE_ONLY,
    "mpu": IsolationModel.MPU,
    "advanced-mpu": IsolationModel.ADVANCED_MPU,
}


def _model(name: str) -> IsolationModel:
    try:
        return _MODEL_NAMES[name]
    except KeyError:
        raise argparse.ArgumentTypeError(
            f"unknown model {name!r}; pick from "
            f"{', '.join(_MODEL_NAMES)}")


def _default_handlers(source: str) -> List[str]:
    """Every defined non-static function, via a quick parse."""
    from repro.cc.parser import parse
    unit = parse(source)
    return [f.name for f in unit.functions
            if f.body is not None and not f.is_static]


def _load_apps(paths: List[str],
               handlers: Optional[List[str]]) -> List[AppSource]:
    apps = []
    for path_text in paths:
        path = Path(path_text)
        source = path.read_text()
        name = path.stem.replace("-", "_")
        app_handlers = handlers if handlers else \
            _default_handlers(source)
        apps.append(AppSource(name, source, handlers=app_handlers))
    return apps


def cmd_build(args: argparse.Namespace) -> int:
    pipeline = AftPipeline(args.model, shadow_stack=args.shadow_stack)
    firmware = pipeline.build(_load_apps(args.sources, args.handlers))
    hex_text = intelhex.encode_image(firmware.image)
    output = Path(args.output)
    output.write_text(hex_text)
    print(f"wrote {output} "
          f"({firmware.image.total_size()} bytes of firmware, "
          f"model={firmware.model.display})")
    if args.map:
        map_path = output.with_suffix(".map")
        lines = [pipeline.report.describe(), ""]
        for app in firmware.app_list():
            lines.append(app.summary())
        lines.append("")
        for name in sorted(firmware.image.symbols):
            lines.append(f"0x{firmware.image.symbols[name]:04X} {name}")
        map_path.write_text("\n".join(lines) + "\n")
        print(f"wrote {map_path}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.kernel.machine import AmuletMachine
    apps = _load_apps(args.sources, None)
    firmware = AftPipeline(args.model,
                           shadow_stack=args.shadow_stack).build(apps)
    machine = AmuletMachine(firmware)
    app_name = args.app if args.app else apps[0].name
    handler_args = [int(a, 0) for a in args.args]
    result = machine.dispatch(app_name, args.handler, handler_args)
    print(f"{app_name}.{args.handler}({', '.join(args.args)}) -> "
          f"{result.return_value} "
          f"[{result.cycles} cycles, {result.instructions} insns]")
    if result.faulted:
        print(f"FAULTED: {result.fault.describe()}")
        return 1
    if machine.services.log.words:
        print(f"log: {machine.services.log.words}")
    if machine.services.display.last_digits is not None:
        print(f"display: {machine.services.display.last_digits}")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.asm.disassembler import disassemble_range
    from repro.kernel.machine import AmuletMachine
    apps = _load_apps(args.sources, None)
    firmware = AftPipeline(args.model).build(apps)
    machine = AmuletMachine(firmware)
    by_address = {v: k for k, v in
                  sorted(firmware.image.symbols.items())}
    for app in firmware.app_list():
        print(f"; === app {app.name} "
              f"(0x{app.code_lo:04X}-0x{app.code_hi:04X}) ===")
        for address, insn in disassemble_range(
                machine.cpu.memory, app.code_lo, app.code_hi):
            if address in by_address:
                print(f"{by_address[address]}:")
            print(f"    0x{address:04X}:  {insn.render()}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import run_all_parallel
    runs = 30 if args.quick else 200
    samples = 16 if args.quick else 64
    report = run_all_parallel(args.jobs, table1_runs=runs,
                              figure3_runs=runs, arp_samples=samples)
    print(report.render())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.aft.cache import build_firmware
    from repro.apps import MANIFESTS, load_suite
    from repro.kernel.machine import AmuletMachine
    from repro.kernel.scheduler import AppSchedule, Scheduler
    firmware = build_firmware(args.model, load_suite())
    machine = AmuletMachine(firmware)
    scheduler = Scheduler(machine)
    for name, manifest in MANIFESTS.items():
        scheduler.add_app(AppSchedule(
            name, sources=manifest.sources_for(name)))
    stats = scheduler.run(horizon_ms=args.seconds * 1000)
    print(f"model={firmware.model.display} "
          f"simulated={args.seconds}s events={stats.events_delivered} "
          f"faults={stats.faults}")
    for name in sorted(stats.per_app_cycles):
        print(f"  {name:<14} {stats.per_app_cycles[name]:>12,} cycles "
              f"({stats.per_app_events[name]} events)")
    return 0


def _fleet_secret(secret_file: Optional[str]) -> Optional[bytes]:
    """The fleet's shared handshake secret: ``--secret-file`` wins,
    else the ``REPRO_FLEET_SECRET`` environment variable, else none
    (loopback-only dispatch)."""
    import os
    if secret_file:
        secret = Path(secret_file).read_bytes().strip()
        if not secret:
            raise ReproError(f"--secret-file {secret_file} is empty")
        return secret
    env = os.environ.get("REPRO_FLEET_SECRET")
    return env.encode() if env else None


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.fleet.executor import FleetConfig, run_campaign
    from repro.fleet.telemetry import DEFAULT_MODELS, MODELS_BY_KEY, \
        summary_text
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1 (got {args.jobs})")
    if args.model == "all":
        models = DEFAULT_MODELS
    else:
        models = tuple(key.strip() for key in args.model.split(","))
    for key in models:
        if key not in MODELS_BY_KEY:
            raise ReproError(f"unknown model {key!r}; pick from "
                             f"{', '.join(MODELS_BY_KEY)} or 'all'")
    config = FleetConfig(
        devices=args.devices, hours=args.hours, models=models,
        seed=args.seed,
        checkpoint_minutes=args.checkpoint_minutes,
        rogue_fraction=args.rogue_fraction,
        homogeneous=args.homogeneous)
    profile_dir = (Path(args.out) / "profiles" if args.profile
                   else None)
    transport = None
    if args.listen is not None:
        from repro.fleet.net.coordinator import SocketTransport
        from repro.fleet.net.worker import parse_endpoint
        host, port = parse_endpoint(args.listen)
        transport = SocketTransport(
            host=host, port=port,
            lease_timeout_s=args.lease_seconds,
            heartbeat_s=args.heartbeat_seconds,
            secret=_fleet_secret(args.secret_file))
    summary = run_campaign(config, Path(args.out), jobs=args.jobs,
                           crash_after_checkpoints=args.crash_after,
                           report=print, cache_mode=args.cache_mode,
                           profile_dir=profile_dir,
                           crash_before_replace=args.crash_before_replace,
                           cohort=args.cohort == "on",
                           crash_after_records=args.crash_after_records,
                           transport=transport,
                           rejoin=args.rejoin == "on")
    print(summary_text(summary))
    print(f"summary: {Path(args.out) / 'summary.json'}")
    if profile_dir is not None:
        print(f"profiles: {profile_dir}/<model>-uNNNNN.prof per work "
              "unit (inspect with python -m pstats) and "
              f"{profile_dir}/coordinator.json (queue waits, "
              "checkpoint flush stalls)")
    return 0


def cmd_fleet_worker(args: argparse.Namespace) -> int:
    from repro.fleet.net.worker import run_worker
    if args.batch_bytes < 0:
        raise ReproError(
            f"--batch-bytes must be >= 0 (got {args.batch_bytes}; "
            "0 disables coalescing)")
    if args.batch_ms < 1:
        raise ReproError(
            f"--batch-ms must be >= 1 (got {args.batch_ms})")
    return run_worker(
        args.connect, worker_id=args.worker_id,
        cache_mode=args.cache_mode, retry_limit=args.retry_limit,
        crash_after_checkpoints=args.crash_after_ckpts,
        report=print, secret=_fleet_secret(args.secret_file),
        batch_bytes=args.batch_bytes, batch_ms=args.batch_ms,
        compress=args.compress == "on")


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """One-shot live view of a campaign, from either side:

    * ``HOST:PORT`` — handshake with the coordinator as a ``status``
      observer (authenticating like a worker when a secret is set)
      and print the reply;
    * an out-dir — read the ``status.json`` the coordinator mirrors
      there about once a second (works after the coordinator exits,
      and without network reachability).
    """
    import json
    target = args.target
    if ":" in target and not Path(target).exists():
        import socket as socketlib
        from repro.fleet.net.protocol import Channel, PROTO_VERSION, \
            auth_mac
        from repro.fleet.net.worker import parse_endpoint
        from repro.fleet.snapshot import STATE_VERSION
        from repro.msp430.execcache import DISK_FORMAT
        host, port = parse_endpoint(target)
        secret = _fleet_secret(args.secret_file)
        channel = Channel(
            socketlib.create_connection((host, port), timeout=10))
        try:
            channel.send({"type": "hello", "proto": PROTO_VERSION,
                          "state_version": STATE_VERSION,
                          "disk_format": DISK_FORMAT,
                          "campaign": None, "role": "status",
                          "worker": "status-observer",
                          "host": socketlib.gethostname()})
            message, _blob = channel.recv(timeout=10.0)
            if message["type"] == "challenge":
                if secret is None:
                    raise ReproError(
                        "coordinator requires a shared secret — pass "
                        "--secret-file or set REPRO_FLEET_SECRET")
                channel.send({"type": "auth", "mac": auth_mac(
                    secret, str(message.get("nonce", "")))})
                message, _blob = channel.recv(timeout=10.0)
            if message["type"] == "reject":
                raise ReproError(
                    f"status request rejected: "
                    f"{message.get('reason', 'rejected')}")
            if message["type"] != "status":
                raise ReproError(
                    f"expected a status reply, got "
                    f"{message['type']!r}")
            status = message
        finally:
            channel.close()
    else:
        path = Path(target)
        if path.is_dir():
            path = path / "status.json"
        if not path.exists():
            raise ReproError(
                f"no status at {path} — point at a campaign out-dir "
                "with a socket coordinator (status.json appears "
                "once dispatch starts) or at a live HOST:PORT")
        status = json.loads(path.read_text())
    print(_fleet_status_text(status))
    return 0


def _fleet_status_text(status: dict) -> str:
    """Render one status snapshot for a terminal."""
    lines = [f"campaign {status.get('campaign') or '?'}"]
    model = status.get("model")
    if model:
        lines.append(
            f"  model {model}: {status.get('devices_done', 0)}/"
            f"{status.get('devices_total', 0)} devices, "
            f"{status.get('queue_depth', 0)} unit(s) queued, "
            f"{status.get('active_leases', 0)} leased, "
            f"{status.get('requeues', 0)} requeue(s)")
    else:
        lines.append(
            f"  no model in flight "
            f"({status.get('requeues', 0)} requeue(s) so far)")
    cohort = status.get("cohort") or {}
    if any(cohort.values()):
        rate = status.get("trace_hit_rate")
        lines.append(
            f"  cohort: {cohort.get('cohort_replayed', 0)} replayed, "
            f"{cohort.get('cohort_executed', 0)} executed, "
            f"{cohort.get('cohort_forks', 0)} fork(s), "
            f"{cohort.get('cohort_rejoins', 0)} rejoin(s); "
            f"trace tier {cohort.get('trace_hits', 0)} hit(s) / "
            f"{cohort.get('trace_misses', 0)} miss(es)"
            + (f" ({rate:.0%} hit rate)"
               if isinstance(rate, float) else "")
            + f", {cohort.get('trace_published', 0)} published")
    workers = status.get("workers") or {}
    for worker_id in sorted(workers):
        row = workers[worker_id]
        lines.append(
            f"  worker {worker_id} ({row.get('host', '?')}): "
            f"{row.get('units_run', 0)} unit(s), "
            f"{row.get('devices_done', 0)} device(s), "
            f"{row.get('bytes_from_worker', 0):,}B up / "
            f"{row.get('bytes_to_worker', 0):,}B down, "
            f"{row.get('reconnects', 0)} reconnect(s), "
            f"{row.get('lease_timeouts', 0)} lease timeout(s)")
    if not workers:
        lines.append("  no workers have connected")
    return "\n".join(lines)


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.attacks import run_attack_matrix
    from repro.fuzz.engine import (
        replay_corpus,
        run_differential_campaign,
        run_smoke,
    )
    from repro.fuzz.harness import run_differential
    from repro.fuzz.shrink import load_case

    if args.smoke:
        ok = run_smoke(seeds=args.seeds or 200,
                       seed_start=args.seed_start, report=print)
        print("smoke: " + ("PASS" if ok else "FAIL"))
        return 0 if ok else 1

    if args.replay:
        target = Path(args.replay)
        if target.is_dir():
            results = replay_corpus(target, chunk=args.chunk,
                                    max_instructions=args.max_insns,
                                    report=print)
        else:
            results = [run_differential(
                load_case(target), chunk=args.chunk,
                max_instructions=args.max_insns)]
            print(results[0].describe())
        return 1 if any(not r.ok for r in results) else 0

    status = 0
    if not args.attacks_only:
        corpus = None if args.no_corpus else Path(args.corpus)
        stats = run_differential_campaign(
            seeds=args.seeds or 500, seed_start=args.seed_start,
            chunk=args.chunk, max_instructions=args.max_insns,
            corpus=corpus, report=print)
        print(stats.describe())
        if not stats.clean:
            status = 1
    if not args.diff_only:
        outcomes = run_attack_matrix()
        for outcome in outcomes:
            print(outcome.describe())
        failures = [o for o in outcomes if not o.ok]
        print(f"attack matrix: {len(outcomes) - len(failures)}/"
              f"{len(outcomes)} ok")
        if failures:
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Application Memory Isolation "
                    "on Ultra-Low-Power MCUs' (USENIX ATC '18)")
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a firmware image")
    build.add_argument("sources", nargs="+",
                       help="MiniC app source files (.mc)")
    build.add_argument("--model", type=_model, default="mpu")
    build.add_argument("--handlers", nargs="*",
                       help="exported handler names (default: all)")
    build.add_argument("--output", "-o", default="firmware.hex")
    build.add_argument("--map", action="store_true",
                       help="also write a .map symbol file")
    build.add_argument("--shadow-stack", action="store_true")
    build.set_defaults(func=cmd_build)

    run = sub.add_parser("run", help="build and dispatch a handler")
    run.add_argument("sources", nargs="+")
    run.add_argument("--model", type=_model, default="mpu")
    run.add_argument("--app", help="app name (default: first source)")
    run.add_argument("--handler", required=True)
    run.add_argument("--args", nargs="*", default=[])
    run.add_argument("--shadow-stack", action="store_true")
    run.set_defaults(func=cmd_run)

    disasm = sub.add_parser("disasm", help="disassemble built apps")
    disasm.add_argument("sources", nargs="+")
    disasm.add_argument("--model", type=_model, default="mpu")
    disasm.set_defaults(func=cmd_disasm)

    experiments = sub.add_parser(
        "experiments", help="regenerate the paper's tables/figures")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent experiment cells across N processes "
             "(default 1 = serial; results are identical)")
    experiments.set_defaults(func=cmd_experiments)

    suite = sub.add_parser(
        "suite", help="simulate the nine-app wearable")
    suite.add_argument("--model", type=_model, default="mpu")
    suite.add_argument("--seconds", type=int, default=5)
    suite.set_defaults(func=cmd_suite)

    fleet = sub.add_parser(
        "fleet", help="simulate a fleet of varied devices")
    fleet_sub = fleet.add_subparsers(dest="fleet_command",
                                     required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="run (or resume) a work-stealing fleet campaign")
    fleet_run.add_argument("--devices", type=int, default=25,
                           metavar="N")
    fleet_run.add_argument("--hours", type=float, default=1.0,
                           metavar="H",
                           help="simulated hours per device")
    fleet_run.add_argument(
        "--model", default="all", metavar="M",
        help="comma-separated isolation models, or 'all' "
             "(none,feature-limited,software-only,mpu)")
    fleet_run.add_argument(
        "--jobs", type=int, default=1, metavar="J",
        help="worker processes pulling from the work-stealing unit "
             "queue; an execution detail — summaries are "
             "byte-identical for any value, and a campaign may be "
             "resumed under a different --jobs")
    fleet_run.add_argument("--seed", type=int, default=0,
                           help="fleet seed; every device derives "
                                "from (seed, device_id)")
    fleet_run.add_argument("--out", default="fleet_out", metavar="DIR",
                           help="campaign directory (checkpoints, "
                                "telemetry, summary)")
    fleet_run.add_argument(
        "--checkpoint-minutes", type=float, default=10.0, metavar="K",
        help="simulated minutes between in-device checkpoints")
    fleet_run.add_argument("--rogue-fraction", type=float,
                           default=0.125, metavar="F",
                           help="probability a device sideloads the "
                                "rogue app")
    fleet_run.add_argument(
        "--cache-mode", default="shared",
        choices=("shared", "private", "step"),
        help="execution-cache strategy: 'shared' publishes translated "
             "blocks process-wide so same-firmware devices skip "
             "translation, 'private' keeps per-device caches, 'step' "
             "is the reference interpreter (results are identical "
             "across modes; only speed differs)")
    fleet_run.add_argument(
        "--profile", action="store_true",
        help="profile the campaign: cProfile each work unit "
             "(<out>/profiles/<model>-uNNNNN.prof) and write the "
             "coordinator's queue-wait / checkpoint-stall breakdown "
             "to <out>/profiles/coordinator.json")
    fleet_run.add_argument(
        "--cohort", default="off", choices=("on", "off"),
        help="lockstep same-firmware devices: group them into shared "
             "work units, execute each segment once and replay the "
             "recorded dispatch trace into state-identical siblings "
             "(devices fork to real execution at first divergence); "
             "an execution detail — summaries are byte-identical "
             "on or off")
    fleet_run.add_argument(
        "--rejoin", default="on", choices=("on", "off"),
        help="let a forked cohort follower re-handshake at each "
             "later dispatch boundary and resume trace replay once "
             "its state digest matches again (only with --cohort "
             "on); an execution detail — summaries are "
             "byte-identical on or off")
    fleet_run.add_argument(
        "--homogeneous", action="store_true",
        help="clone device 0 across the whole fleet (one firmware "
             "build for everyone) — campaign identity, used by the "
             "cohort benchmark scenario")
    fleet_run.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve the unit queue over TCP instead of an in-process "
             "pool: remote 'repro fleet worker' processes lease the "
             "units (port 0 picks an ephemeral port, written to "
             "<out>/coordinator.addr); output stays byte-identical "
             "to a --jobs run, kill-and-resume included")
    fleet_run.add_argument(
        "--lease-seconds", type=float, default=30.0, metavar="S",
        help="lease deadline: a worker silent this long has its unit "
             "returned to the queue (only with --listen)")
    fleet_run.add_argument(
        "--heartbeat-seconds", type=float, default=5.0, metavar="S",
        help="heartbeat cadence advertised to workers "
             "(only with --listen)")
    fleet_run.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the fleet's shared handshake secret "
             "(default: the REPRO_FLEET_SECRET environment "
             "variable); required for a non-loopback --listen — "
             "workers must present the same secret to join")
    fleet_run.add_argument(
        "--crash-after", type=int, default=0, metavar="C",
        help=argparse.SUPPRESS)   # test hook: die after C checkpoints
    fleet_run.add_argument(
        "--crash-before-replace", type=int, default=0, metavar="C",
        help=argparse.SUPPRESS)   # test hook: die mid-checkpoint-write
    fleet_run.add_argument(
        "--crash-after-records", type=int, default=0, metavar="C",
        help=argparse.SUPPRESS)   # test hook: die before ckpt unlink
    fleet_run.set_defaults(func=cmd_fleet_run)

    fleet_worker = fleet_sub.add_parser(
        "worker",
        help="join a --listen coordinator: lease work units over "
             "TCP, stream results back")
    fleet_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's listen address")
    fleet_worker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable name for coordinator.json attribution "
             "(default: <hostname>-<pid>)")
    fleet_worker.add_argument(
        "--cache-mode", default=None,
        choices=("shared", "private", "step"),
        help="override the coordinator's execution-cache strategy on "
             "this worker (results are identical; only speed differs)")
    fleet_worker.add_argument(
        "--retry-limit", type=int, default=10, metavar="N",
        help="consecutive connection failures before giving up")
    fleet_worker.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the fleet's shared handshake secret "
             "(default: the REPRO_FLEET_SECRET environment "
             "variable), for coordinators that require one")
    fleet_worker.add_argument(
        "--batch-bytes", type=int, default=65536, metavar="B",
        help="coalesce report frames (ckpt/dev_done/result) into one "
             "batch frame once B payload bytes buffer (0 disables "
             "batching; results are identical either way)")
    fleet_worker.add_argument(
        "--batch-ms", type=int, default=50, metavar="MS",
        help="ship a partial batch once its oldest frame has waited "
             "this long")
    fleet_worker.add_argument(
        "--compress", default="on", choices=("on", "off"),
        help="zlib-deflate blob transfers (checkpoints, cache "
             "stores) on the wire; transparent and verified on "
             "receipt — results are identical on or off")
    fleet_worker.add_argument(
        "--crash-after-ckpts", type=int, default=0, metavar="C",
        help=argparse.SUPPRESS)   # test hook: die after C ckpt frames
    fleet_worker.set_defaults(func=cmd_fleet_worker)

    fleet_status = fleet_sub.add_parser(
        "status",
        help="one-shot live view of a campaign: per-worker "
             "throughput, queue depth, trace-tier hit rates")
    fleet_status.add_argument(
        "target", metavar="OUT_DIR|HOST:PORT",
        help="a campaign out-dir (reads the status.json the "
             "coordinator mirrors there) or a live coordinator "
             "address (asks over the wire)")
    fleet_status.add_argument(
        "--secret-file", default=None, metavar="PATH",
        help="file holding the fleet's shared handshake secret "
             "(default: the REPRO_FLEET_SECRET environment "
             "variable), for coordinators that require one")
    fleet_status.set_defaults(func=cmd_fleet_status)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing and the attack matrix")
    fuzz.add_argument("--seeds", type=int, default=0, metavar="N",
                      help="number of differential seeds "
                           "(default 500; 200 with --smoke)")
    fuzz.add_argument("--seed-start", type=int, default=0)
    fuzz.add_argument("--smoke", action="store_true",
                      help="CI gate: fixed seed block + attack matrix")
    fuzz.add_argument("--replay", metavar="PATH",
                      help="re-run an archived corpus case "
                           "(or every case in a directory)")
    fuzz.add_argument("--diff-only", action="store_true",
                      help="skip the attack matrix")
    fuzz.add_argument("--attacks-only", action="store_true",
                      help="skip the differential campaign")
    fuzz.add_argument("--corpus", default="tests/fuzz_corpus",
                      help="where shrunken divergences are archived")
    fuzz.add_argument("--no-corpus", action="store_true",
                      help="do not archive divergences")
    fuzz.add_argument("--chunk", type=int, default=256,
                      help="checkpoint spacing in instructions")
    fuzz.add_argument("--max-insns", type=int, default=20_000,
                      help="per-run instruction budget")
    fuzz.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
