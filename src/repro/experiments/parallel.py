"""Parallel fan-out of the paper's experiment suite.

Every experiment decomposes into *cells* that share nothing with each
other (fresh firmware, fresh machine, explicit arguments):

* Table 1 — one cell per isolation model,
* Figure 3 — one cell per model (the machine, and therefore app state,
  is shared across the three cases *within* a model),
* code size — one cell per model,
* Figure 2 — the ARP profiling chain is one sequential cell (its
  sensor arguments come from a single seeded LCG, so app order
  matters; see :func:`repro.experiments.figure2.profile_suite`), run
  concurrently with the Table 1 cells it combines with.

Cells run in worker processes via the shared pool helper
(:func:`repro.pool.worker_pool`, which the fleet executor reuses); the
parent merges results in the exact order the serial loops use, so the
output is byte-for-byte identical to ``--jobs 1``.  Workers share the
on-disk firmware build cache (:mod:`repro.aft.cache`), so each
firmware is compiled at most once across the whole fan-out.

Worker functions live at module level so they pickle under any start
method; all cell inputs (models, counts, ``AppSource`` lists) and
outputs (``ModelCosts``, ``ArpProfile``, plain dicts) are picklable
dataclasses or builtins.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.apps.catalog import SUITE_NAMES, load_suite
from repro.experiments import code_size as code_size_mod
from repro.experiments import figure2 as figure2_mod
from repro.experiments import figure3 as figure3_mod
from repro.experiments import table1 as table1_mod
from repro.experiments.code_size import SIZE_MODELS, CodeSizeResult
from repro.experiments.figure2 import Figure2Result
from repro.experiments.figure3 import CASES, Figure3Result
from repro.experiments.report import FullReport
from repro.experiments.table1 import DEFAULT_MODELS, Table1Result
from repro.pool import worker_pool


# -- module-level cell workers (must be picklable) ----------------------
def _table1_cell(model: IsolationModel, runs: int,
                 loop_iterations: int):
    return table1_mod.measure_model(model, runs, loop_iterations)


def _figure3_cell(model: IsolationModel, runs: int):
    return figure3_mod.measure_model(model, runs)


def _code_size_cell(model: IsolationModel, sources: List[AppSource]):
    return code_size_mod.measure_model(model, sources)


def _arp_cell(apps: Tuple[str, ...], arp_samples: int):
    return figure2_mod.profile_suite(apps, arp_samples)


# -- deterministic merges ----------------------------------------------
def _merge_table1(futures: Dict[IsolationModel, Future],
                  models: Sequence[IsolationModel], runs: int,
                  loop_iterations: int) -> Table1Result:
    result = Table1Result(runs=runs, loop_iterations=loop_iterations)
    for model in models:                 # serial iteration order
        result.costs[model] = futures[model].result()
    return result


def _merge_figure3(futures: Dict[IsolationModel, Future],
                   models: Sequence[IsolationModel],
                   runs: int) -> Figure3Result:
    result = Figure3Result(runs=runs)
    for label, _app, _handler in CASES:
        result.cycles[label] = {}
    for model in models:
        cell = futures[model].result()
        for label, avg in cell.items():
            result.cycles[label][model] = avg
    return result


def _merge_code_size(futures: Dict[IsolationModel, Future],
                     models: Sequence[IsolationModel]) -> CodeSizeResult:
    result = CodeSizeResult()
    for model in models:
        for name, size in futures[model].result().items():
            result.sizes.setdefault(name, {})[model] = size
    return result


# -- public entry points ------------------------------------------------
def run_table1_parallel(jobs: int,
                        models: Sequence[IsolationModel] = DEFAULT_MODELS,
                        runs: int = 200,
                        loop_iterations: int = 64) -> Table1Result:
    if jobs <= 1:
        return table1_mod.run_table1(models, runs, loop_iterations)
    with worker_pool(jobs) as pool:
        futures = {m: pool.submit(_table1_cell, m, runs, loop_iterations)
                   for m in models}
        return _merge_table1(futures, models, runs, loop_iterations)


def run_figure2_parallel(jobs: int,
                         apps: Sequence[str] = SUITE_NAMES,
                         table1_runs: int = 50,
                         arp_samples: int = 48) -> Figure2Result:
    if jobs <= 1:
        return figure2_mod.run_figure2(apps, table1_runs=table1_runs,
                                       arp_samples=arp_samples)
    with worker_pool(jobs) as pool:
        t1_futures = {m: pool.submit(_table1_cell, m, table1_runs, 64)
                      for m in DEFAULT_MODELS}
        arp_future = pool.submit(_arp_cell, tuple(apps), arp_samples)
        table1 = _merge_table1(t1_futures, DEFAULT_MODELS,
                               table1_runs, 64)
        profiles = arp_future.result()
    return figure2_mod.run_figure2(apps, table1=table1,
                                   arp_samples=arp_samples,
                                   profiles=profiles)


def run_figure3_parallel(jobs: int,
                         models: Sequence[IsolationModel] = DEFAULT_MODELS,
                         runs: int = 200) -> Figure3Result:
    if jobs <= 1:
        return figure3_mod.run_figure3(models, runs)
    with worker_pool(jobs) as pool:
        futures = {m: pool.submit(_figure3_cell, m, runs)
                   for m in models}
        return _merge_figure3(futures, models, runs)


def run_code_size_parallel(jobs: int,
                           apps: Optional[Sequence[AppSource]] = None,
                           models: Sequence[IsolationModel] = SIZE_MODELS
                           ) -> CodeSizeResult:
    if jobs <= 1:
        return code_size_mod.run_code_size(apps, models)
    sources = list(apps) if apps is not None else load_suite()
    with worker_pool(jobs) as pool:
        futures = {m: pool.submit(_code_size_cell, m, sources)
                   for m in models}
        return _merge_code_size(futures, models)


def run_all_parallel(jobs: int,
                     table1_runs: int = 100,
                     figure3_runs: int = 100,
                     arp_samples: int = 32,
                     include_code_size: bool = True) -> FullReport:
    """Parallel ``run_all``: every independent cell of every experiment
    is submitted to one shared pool up front, then merged in serial
    order — output identical to :func:`repro.experiments.report.run_all`.
    """
    from repro.experiments.report import run_all
    if jobs <= 1:
        return run_all(table1_runs=table1_runs,
                       figure3_runs=figure3_runs,
                       arp_samples=arp_samples,
                       include_code_size=include_code_size)
    sources = load_suite()
    with worker_pool(jobs) as pool:
        t1_futures = {m: pool.submit(_table1_cell, m, table1_runs, 64)
                      for m in DEFAULT_MODELS}
        arp_future = pool.submit(_arp_cell, tuple(SUITE_NAMES),
                                 arp_samples)
        f3_futures = {m: pool.submit(_figure3_cell, m, figure3_runs)
                      for m in DEFAULT_MODELS}
        cs_futures = {m: pool.submit(_code_size_cell, m, sources)
                      for m in SIZE_MODELS} if include_code_size else {}

        table1 = _merge_table1(t1_futures, DEFAULT_MODELS,
                               table1_runs, 64)
        profiles = arp_future.result()
        figure2 = figure2_mod.run_figure2(table1=table1,
                                          arp_samples=arp_samples,
                                          profiles=profiles)
        figure3 = _merge_figure3(f3_futures, DEFAULT_MODELS,
                                 figure3_runs)
        code_size = (_merge_code_size(cs_futures, SIZE_MODELS)
                     if include_code_size else None)
    return FullReport(table1, figure2, figure3, code_size)
