"""Render every experiment as a single text report, with the paper's
numbers alongside for comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aft.models import IsolationModel
from repro.experiments.code_size import CodeSizeResult, run_code_size
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.table1 import (
    PAPER_TABLE1,
    Table1Result,
    run_table1,
)


@dataclass
class FullReport:
    table1: Table1Result
    figure2: Figure2Result
    figure3: Figure3Result
    code_size: Optional[CodeSizeResult] = None

    def render(self) -> str:
        sections = []
        sections.append("=" * 72)
        sections.append("Table 1 — average cycle count for basic memory "
                        "isolation operations")
        sections.append("=" * 72)
        sections.append(self.table1.render())
        paper = "  |  ".join(
            f"{m.display}: access {a}, switch {s}"
            for m, (a, s) in PAPER_TABLE1.items())
        sections.append(f"(paper: {paper})")
        sections.append(
            f"qualitative shape holds: {self.table1.shape_holds()}")
        sections.append("")
        sections.append("=" * 72)
        sections.append("Figure 2 — weekly isolation overhead and "
                        "battery impact, nine-app suite")
        sections.append("=" * 72)
        sections.append(self.figure2.render())
        sections.append("")
        sections.append(self.figure2.render_chart())
        sections.append(
            f"max battery impact (MPU / Software Only): "
            f"{self.figure2.max_battery_impact():.3f}% "
            f"(paper: < 0.5% for all apps) -> "
            f"holds: {self.figure2.shape_holds()}")
        sections.append("")
        sections.append("=" * 72)
        sections.append("Figure 3 — percentage slowdown per memory "
                        "model, benchmark apps")
        sections.append("=" * 72)
        sections.append(self.figure3.render())
        sections.append("")
        sections.append(self.figure3.render_chart())
        sections.append(
            f"qualitative shape (MPU lowest everywhere; full ordering "
            f"on Quicksort) holds: {self.figure3.shape_holds()}")
        if self.code_size is not None:
            sections.append("")
            sections.append("=" * 72)
            sections.append("Extension — flash footprint per memory "
                            "model (not a paper artifact)")
            sections.append("=" * 72)
            sections.append(self.code_size.render())
        return "\n".join(sections)


def run_all(table1_runs: int = 100, figure3_runs: int = 100,
            arp_samples: int = 32,
            include_code_size: bool = True) -> FullReport:
    table1 = run_table1(runs=table1_runs)
    figure2 = run_figure2(table1=table1, arp_samples=arp_samples)
    figure3 = run_figure3(runs=figure3_runs)
    code_size = run_code_size() if include_code_size else None
    return FullReport(table1, figure2, figure3, code_size)
