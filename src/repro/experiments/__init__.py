"""Experiment harnesses regenerating every table and figure in the
paper's evaluation (section 4).

* :mod:`repro.experiments.table1`  — Table 1: average cycle count for
  basic memory-isolation operations (memory access, context switch)
  under all four memory models.
* :mod:`repro.experiments.figure2` — Figure 2: isolation overhead in
  billions of cycles per week plus battery-lifetime impact for the
  nine-app suite.
* :mod:`repro.experiments.figure3` — Figure 3: percentage slowdown of
  the benchmark apps (Activity Case 1/2, Quicksort) per model.
* :mod:`repro.experiments.report`  — text rendering of all three.
"""

from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.code_size import CodeSizeResult, run_code_size

__all__ = [
    "Table1Result", "run_table1",
    "Figure2Result", "run_figure2",
    "Figure3Result", "run_figure3",
    "CodeSizeResult", "run_code_size",
]
