"""Figure 2: isolation overhead (billions of cycles per week) and
battery-lifetime impact for the nine-app Amulet suite under the
Feature Limited, MPU, and Software Only models.

Methodology (paper section 4.1): ARP counts memory accesses and context
switches per handler; manifest event rates extrapolate a week; Table 1
per-operation overheads convert counts to cycles; the energy model
converts cycles to battery impact.  The paper's headline: *"For all
applications, isolation using either the MPU or Software Only methods
has less than a 0.5 % impact on battery lifetime."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aft.models import IsolationModel
from repro.apps.catalog import SUITE_NAMES, load_suite
from repro.apps.manifests import MANIFESTS
from repro.experiments.table1 import Table1Result, run_table1
from repro.profiler.arp import ArpProfile, ArpProfiler
from repro.profiler.arpview import ArpView, OperationOverheads, \
    WeeklyOverhead
from repro.profiler.energy import EnergyModel

FIGURE2_MODELS = (
    IsolationModel.FEATURE_LIMITED,
    IsolationModel.MPU,
    IsolationModel.SOFTWARE_ONLY,
)


@dataclass
class Figure2Result:
    #: app -> model -> weekly overhead
    overheads: Dict[str, Dict[IsolationModel, WeeklyOverhead]] = field(
        default_factory=dict)
    table1: Optional[Table1Result] = None

    def render(self) -> str:
        lines = [f"{'Application':<16}"
                 + "".join(f"{m.display:>18}" for m in FIGURE2_MODELS)
                 + "   (billions of cycles/week | battery impact %)"]
        for app in self.overheads:
            row = f"{MANIFESTS[app].display_name:<16}"
            for model in FIGURE2_MODELS:
                overhead = self.overheads[app][model]
                row += (f"  {overhead.billions_of_cycles:7.3f}B/"
                        f"{overhead.battery_impact_percent:5.3f}%")
            lines.append(row)
        return "\n".join(lines)

    def render_chart(self, width: int = 40) -> str:
        """ASCII bar chart mirroring the figure's cycles series."""
        peak = max(
            (self.overheads[app][model].cycles_per_week
             for app in self.overheads for model in FIGURE2_MODELS),
            default=1.0) or 1.0
        lines = ["Isolation overhead (billions of cycles/week):"]
        for app in self.overheads:
            lines.append(f"{MANIFESTS[app].display_name}")
            for model in FIGURE2_MODELS:
                overhead = self.overheads[app][model]
                bar = "#" * max(
                    1, round(width * overhead.cycles_per_week / peak))
                lines.append(
                    f"  {model.display:<16} {bar:<{width}} "
                    f"{overhead.billions_of_cycles:6.3f}B "
                    f"({overhead.battery_impact_percent:.3f}%)")
        return "\n".join(lines)

    def max_battery_impact(self,
                           models: Sequence[IsolationModel] = (
                               IsolationModel.MPU,
                               IsolationModel.SOFTWARE_ONLY)) -> float:
        return max(self.overheads[app][model].battery_impact_percent
                   for app in self.overheads for model in models)

    def shape_holds(self) -> bool:
        """The paper's claim: MPU and Software Only stay under 0.5 %
        battery impact for every app."""
        return self.max_battery_impact() < 0.5


def overheads_from_table1(table1: Table1Result
                          ) -> Dict[IsolationModel, OperationOverheads]:
    """Per-operation *extra* cycles for each model vs. No Isolation.

    A context switch in the ARP accounting is an OS round trip, which
    for API calls pays the api-gate overhead and for event dispatches
    pays the dispatch-gate overhead; we use the dispatch-gate figure,
    the larger of the two, making the estimate conservative."""
    out = {}
    for model, costs in table1.overheads().items():
        out[model] = OperationOverheads(
            model=model,
            per_memory_access=max(costs.memory_access, 0.0),
            per_context_switch=max(costs.context_switch, 0.0))
    return out


def profile_suite(apps: Sequence[str] = SUITE_NAMES,
                  arp_samples: int = 48) -> Dict[str, "ArpProfile"]:
    """ARP profiles for every app, in suite order.

    This is one *sequential* unit of work: the profiler's machine
    draws live sensor arguments from a single seeded LCG environment,
    so each app's samples depend on how many draws the apps before it
    consumed.  Splitting it per app would change the numbers — the
    parallel runner therefore schedules this whole chain as one cell,
    concurrent with the (independent) Table 1 model cells."""
    profiler = ArpProfiler(load_suite(apps))
    return {app: profiler.profile_app(MANIFESTS[app],
                                      samples=arp_samples)
            for app in apps}


def run_figure2(apps: Sequence[str] = SUITE_NAMES,
                table1: Optional[Table1Result] = None,
                table1_runs: int = 50,
                arp_samples: int = 48,
                energy: Optional[EnergyModel] = None,
                profiles: Optional[Dict[str, "ArpProfile"]] = None
                ) -> Figure2Result:
    if table1 is None:
        table1 = run_table1(runs=table1_runs)
    per_op = overheads_from_table1(table1)
    view = ArpView(energy)

    if profiles is None:
        profiles = profile_suite(apps, arp_samples)
    result = Figure2Result(table1=table1)
    for app in apps:
        manifest = MANIFESTS[app]
        profile = profiles[app]
        result.overheads[app] = {}
        for model in FIGURE2_MODELS:
            result.overheads[app][model] = view.weekly_overhead(
                profile, manifest, per_op[model])
    return result
