"""Extension experiment: code-size cost of each isolation method.

The paper evaluates *time* and *energy*; the software-isolation
literature it builds on (Harbor, t-kernel) also reports *flash
footprint*, because inserted checks cost code bytes on parts with tens
of kilobytes of program memory.  This experiment fills that column in
for the paper's four methods: same apps, same AFT, measured app text
bytes per model.

Expected shape, by construction of the checks: NoIsolation smallest;
MPU adds one compare+branch per checked site; SoftwareOnly two;
FeatureLimited's out-of-line helper call is the *smallest* of the
checked variants per site (3 instructions vs 4/8) — the inverse of its
run-time ranking, a classic size/speed trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aft.cache import build_firmware
from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.apps.catalog import load_suite

SIZE_MODELS = (
    IsolationModel.NO_ISOLATION,
    IsolationModel.FEATURE_LIMITED,
    IsolationModel.MPU,
    IsolationModel.SOFTWARE_ONLY,
)


@dataclass
class CodeSizeResult:
    #: app -> model -> code bytes
    sizes: Dict[str, Dict[IsolationModel, int]] = field(
        default_factory=dict)

    def total(self, model: IsolationModel) -> int:
        return sum(by_model[model] for by_model in self.sizes.values())

    def overhead_percent(self, model: IsolationModel) -> float:
        baseline = self.total(IsolationModel.NO_ISOLATION)
        return 100.0 * (self.total(model) - baseline) / baseline

    def render(self) -> str:
        lines = [f"{'Application':<16}"
                 + "".join(f"{m.display:>18}" for m in SIZE_MODELS)
                 + "   (app code bytes)"]
        for app, by_model in self.sizes.items():
            row = f"{app:<16}"
            for model in SIZE_MODELS:
                row += f"{by_model[model]:>18}"
            lines.append(row)
        total_row = f"{'TOTAL':<16}"
        for model in SIZE_MODELS:
            total_row += f"{self.total(model):>18}"
        lines.append(total_row)
        overhead_row = f"{'overhead':<16}" + f"{'—':>18}"
        for model in SIZE_MODELS[1:]:
            overhead_row += f"{self.overhead_percent(model):>17.1f}%"
        lines.append(overhead_row)
        return "\n".join(lines)

    def shape_holds(self) -> bool:
        """No-isolation smallest; every isolating model costs bytes."""
        baseline = self.total(IsolationModel.NO_ISOLATION)
        return all(self.total(model) > baseline
                   for model in SIZE_MODELS[1:])


def measure_model(model: IsolationModel,
                  sources: Sequence[AppSource]) -> Dict[str, int]:
    """One code-size cell: app code bytes for a single model build."""
    firmware = build_firmware(model, sources)
    return {app.name: app.code_bytes for app in firmware.app_list()}


def run_code_size(apps: Optional[Sequence[AppSource]] = None,
                  models: Sequence[IsolationModel] = SIZE_MODELS
                  ) -> CodeSizeResult:
    # Feature Limited must be able to build them, so the default corpus
    # is the (pointer-free) nine-app suite.
    sources = list(apps) if apps is not None else load_suite()
    result = CodeSizeResult()
    for model in models:
        for name, size in measure_model(model, sources).items():
            result.sizes.setdefault(name, {})[model] = size
    return result
