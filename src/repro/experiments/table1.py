"""Table 1: average cycle count for basic memory-isolation operations.

Paper methodology (section 4.2): the Synthetic App exercises "the two
fundamental actions that incur memory-protection overheads: memory
accesses and context switches", timed with the hardware timer (16-cycle
precision) over 200 runs.

Measurements:

* **memory access** — ``bench_mem(N)`` runs a tight store loop;
  ``bench_nop(N)`` runs the same loop with register-only work.  The
  reported per-access cost is (T_mem − T_nop) / N + the loop's base
  store cost, i.e. simply T_mem/N measured against the no-isolation
  baseline; we report T_mem/N, the average cycles per accessing loop
  iteration, matching the paper's "average cycle count for a memory
  access" granularity.
* **context switch** — one full OS→app→OS dispatch of an (almost)
  empty handler through the model's gate: register save/restore,
  stack switch, and MPU reprogramming, exactly what the paper's
  context switch comprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.aft.cache import build_firmware
from repro.aft.models import IsolationModel
from repro.apps.catalog import load_benchmarks
from repro.kernel.machine import AmuletMachine

DEFAULT_MODELS = (
    IsolationModel.NO_ISOLATION,
    IsolationModel.FEATURE_LIMITED,
    IsolationModel.MPU,
    IsolationModel.SOFTWARE_ONLY,
)

PAPER_TABLE1 = {
    IsolationModel.NO_ISOLATION: (23, 90),
    IsolationModel.FEATURE_LIMITED: (41, 90),
    IsolationModel.MPU: (29, 142),
    IsolationModel.SOFTWARE_ONLY: (32, 98),
}


@dataclass
class ModelCosts:
    model: IsolationModel
    memory_access: float
    context_switch: float
    api_round_trip: float

    def overhead_vs(self, baseline: "ModelCosts") -> "ModelCosts":
        return ModelCosts(
            self.model,
            self.memory_access - baseline.memory_access,
            self.context_switch - baseline.context_switch,
            self.api_round_trip - baseline.api_round_trip)


@dataclass
class Table1Result:
    costs: Dict[IsolationModel, ModelCosts] = field(default_factory=dict)
    runs: int = 200
    loop_iterations: int = 64

    def overheads(self) -> Dict[IsolationModel, ModelCosts]:
        baseline = self.costs[IsolationModel.NO_ISOLATION]
        return {model: cost.overhead_vs(baseline)
                for model, cost in self.costs.items()
                if model is not IsolationModel.NO_ISOLATION}

    def render(self) -> str:
        header = (f"{'Operation':<16}"
                  + "".join(f"{m.display:>18}" for m in self.costs))
        mem = (f"{'Memory Access':<16}"
               + "".join(f"{c.memory_access:>18.1f}"
                         for c in self.costs.values()))
        sw = (f"{'Context Switch':<16}"
              + "".join(f"{c.context_switch:>18.1f}"
                        for c in self.costs.values()))
        api = (f"{'API Round Trip':<16}"
               + "".join(f"{c.api_round_trip:>18.1f}"
                         for c in self.costs.values()))
        return "\n".join([header, mem, sw, api])

    def shape_holds(self) -> bool:
        """The paper's qualitative result: per-access
        NoIso < MPU < SoftwareOnly < FeatureLimited; per-switch
        NoIso == FeatureLimited < SoftwareOnly < MPU."""
        c = self.costs
        noiso = c[IsolationModel.NO_ISOLATION]
        fl = c[IsolationModel.FEATURE_LIMITED]
        mpu = c[IsolationModel.MPU]
        sw = c[IsolationModel.SOFTWARE_ONLY]
        access_ok = (noiso.memory_access < mpu.memory_access
                     < sw.memory_access < fl.memory_access)
        switch_ok = (abs(noiso.context_switch - fl.context_switch) < 1.0
                     and fl.context_switch < sw.context_switch
                     < mpu.context_switch)
        return access_ok and switch_ok


def _measure_loop(machine: AmuletMachine, handler: str,
                  iterations: int, runs: int) -> float:
    """Average cycles of one dispatch of synthetic.<handler>(iters),
    measured with the 16-cycle-granularity hardware timer."""
    timer = machine.timer
    total = 0
    for _ in range(runs):
        with timer.measure() as measurement:
            result = machine.dispatch("synthetic", handler,
                                      [iterations])
        if result.faulted:
            raise RuntimeError(
                f"synthetic.{handler} faulted: "
                f"{result.fault.describe()}")
        total += measurement.measured_cycles
    return total / runs


def measure_model(model: IsolationModel, runs: int = 200,
                  loop_iterations: int = 64) -> ModelCosts:
    """One Table 1 cell: all three costs for a single model.

    Independent of every other model's cell (fresh firmware, fresh
    machine, explicit arguments — no shared sensor state), so the
    parallel runner fans these out across processes."""
    firmware = build_firmware(model, load_benchmarks(["synthetic"]))
    machine = AmuletMachine(firmware)

    dispatch_cost = _measure_loop(machine, "bench_empty", 0, runs)
    mem_total = _measure_loop(machine, "bench_mem",
                              loop_iterations, runs)
    nop_total = _measure_loop(machine, "bench_nop",
                              loop_iterations, runs)
    switch_total = _measure_loop(machine, "bench_switch",
                                 loop_iterations, runs)

    # Per memory access: average cycles of one accessing loop
    # iteration (address computation + check + store + loop
    # bookkeeping) — the same granularity the paper's synthetic
    # app reports (23 cycles for a no-isolation access).
    per_access = mem_total / loop_iterations
    # Context switch: the full gate round trip for an event.
    context_switch = dispatch_cost
    # API round trip: per-iteration extra of the API-calling loop
    # over the register loop (includes the modeled service cost,
    # identical across models).
    api_round_trip = (switch_total - nop_total) / loop_iterations

    return ModelCosts(
        model=model,
        memory_access=per_access,
        context_switch=context_switch,
        api_round_trip=api_round_trip)


def run_table1(models: Sequence[IsolationModel] = DEFAULT_MODELS,
               runs: int = 200,
               loop_iterations: int = 64) -> Table1Result:
    result = Table1Result(runs=runs, loop_iterations=loop_iterations)
    for model in models:
        result.costs[model] = measure_model(model, runs, loop_iterations)
    return result
