"""Figure 3: percentage slowdown per memory model for the benchmark
apps — Activity Case 1, Activity Case 2, Quicksort.

Paper section 4.2: each application ran 200 times, timed with the
hardware timer (16-cycle precision); slowdown is relative to running
with no isolation.  Expected shape: the MPU method is cheapest for
these computation-heavy apps (half the bounds checks of Software Only,
no context switches to pay for), Feature Limited is the most expensive
(out-of-line array checks), with slowdowns up to ~50 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.aft.cache import build_firmware
from repro.aft.models import IsolationModel
from repro.apps.catalog import load_benchmarks
from repro.kernel.machine import AmuletMachine

DEFAULT_MODELS = (
    IsolationModel.NO_ISOLATION,
    IsolationModel.FEATURE_LIMITED,
    IsolationModel.MPU,
    IsolationModel.SOFTWARE_ONLY,
)

#: (app, handler, needs_init) benchmark cases, Figure 3's x axis
CASES: Tuple[Tuple[str, str, str], ...] = (
    ("Activity Case 1", "activity", "activity_case1"),
    ("Activity Case 2", "activity", "activity_case2"),
    ("Quicksort", "quicksort", "quicksort_run"),
)


@dataclass
class Figure3Result:
    #: case label -> model -> average cycles
    cycles: Dict[str, Dict[IsolationModel, float]] = field(
        default_factory=dict)
    runs: int = 200

    def slowdown_percent(self, case: str,
                         model: IsolationModel) -> float:
        baseline = self.cycles[case][IsolationModel.NO_ISOLATION]
        measured = self.cycles[case][model]
        return 100.0 * (measured - baseline) / baseline

    def render(self) -> str:
        models = [m for m in DEFAULT_MODELS
                  if m is not IsolationModel.NO_ISOLATION]
        lines = [f"{'Application':<18}"
                 + "".join(f"{m.display:>18}" for m in models)]
        for case in self.cycles:
            row = f"{case:<18}"
            for model in models:
                row += f"{self.slowdown_percent(case, model):>17.1f}%"
            lines.append(row)
        return "\n".join(lines)

    def render_chart(self, width: int = 40) -> str:
        """ASCII bar chart of the percentage slowdowns."""
        models = [m for m in DEFAULT_MODELS
                  if m is not IsolationModel.NO_ISOLATION]
        peak = max(self.slowdown_percent(case, model)
                   for case in self.cycles for model in models) or 1.0
        lines = ["Percentage slowdown vs. No Isolation:"]
        for case in self.cycles:
            lines.append(case)
            for model in models:
                pct = self.slowdown_percent(case, model)
                bar = "#" * max(1, round(width * pct / peak))
                lines.append(f"  {model.display:<16} {bar:<{width}} "
                             f"{pct:5.1f}%")
        return "\n".join(lines)

    def shape_holds(self) -> bool:
        """The paper's Figure 3 claims: the MPU method has the lowest
        slowdown on every compute-heavy benchmark ("our method is the
        most effective when used for computationally heavy
        applications"), and on the access-dominated Quicksort the full
        ordering MPU < SoftwareOnly < FeatureLimited appears, with
        Feature Limited approaching ~50 %."""
        for case in self.cycles:
            mpu = self.slowdown_percent(case, IsolationModel.MPU)
            sw = self.slowdown_percent(case,
                                       IsolationModel.SOFTWARE_ONLY)
            fl = self.slowdown_percent(case,
                                       IsolationModel.FEATURE_LIMITED)
            if not (mpu < sw and mpu < fl):
                return False
        qs_mpu = self.slowdown_percent("Quicksort", IsolationModel.MPU)
        qs_sw = self.slowdown_percent("Quicksort",
                                      IsolationModel.SOFTWARE_ONLY)
        qs_fl = self.slowdown_percent("Quicksort",
                                      IsolationModel.FEATURE_LIMITED)
        return qs_mpu < qs_sw < qs_fl


def measure_model(model: IsolationModel,
                  runs: int = 200) -> Dict[str, float]:
    """One Figure 3 cell: average cycles per case for one model.

    The machine (and therefore app state) is shared across the cases
    *within* a model — ``act_init`` seeds the activity app once — so
    the model, not the (case, model) pair, is the independent unit the
    parallel runner fans out."""
    firmware = build_firmware(
        model, load_benchmarks(["activity", "quicksort"]))
    machine = AmuletMachine(firmware)
    machine.dispatch("activity", "act_init", [0])
    cycles: Dict[str, float] = {}
    for label, app, handler in CASES:
        total = 0
        for run in range(runs):
            with machine.timer.measure() as measurement:
                outcome = machine.dispatch(app, handler,
                                           [run * 37 + 11])
            if outcome.faulted:
                raise RuntimeError(
                    f"{app}.{handler} faulted under "
                    f"{model.display}: {outcome.fault.describe()}")
            total += measurement.measured_cycles
        cycles[label] = total / runs
    return cycles


def run_figure3(models: Sequence[IsolationModel] = DEFAULT_MODELS,
                runs: int = 200) -> Figure3Result:
    result = Figure3Result(runs=runs)
    for label, _app, _handler in CASES:
        result.cycles[label] = {}

    for model in models:
        for label, avg in measure_model(model, runs).items():
            result.cycles[label][model] = avg
    return result
