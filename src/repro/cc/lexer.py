"""Hand-written lexer for MiniC.

Handles ``//`` and ``/* */`` comments, decimal/hex/octal/binary integer
literals with optional ``u``/``U`` suffix, character literals with the
usual escapes, and string literals.
"""

from __future__ import annotations

from typing import List

from repro.errors import CompileError
from repro.cc.tokens import KEYWORDS, PUNCTUATORS, Token, TokenType

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f",
    "v": "\v",
}


class _Lexer:
    def __init__(self, source: str, filename: str = "<minic>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self.line, self.col, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise CompileError("unterminated comment", start_line,
                                       0, self.filename)
            else:
                return

    def _read_escape(self) -> str:
        self._advance()  # consume backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise self._error("bad \\x escape")
            return chr(int(digits, 16) & 0xFF)
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        raise self._error(f"unknown escape \\{ch}")

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        text = ""
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 16)
        elif self._peek() == "0" and self._peek(1) in "bB":
            self._advance(2)
            while self._peek() and self._peek() in "01":
                self._advance()
            text = self.source[start:self.pos]
            value = int(text[2:], 2)
        else:
            while self._peek().isdigit():
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 8) if (len(text) > 1
                                     and text.startswith("0")) \
                else int(text)
        while self._peek() and self._peek() in "uUlL":  # skip suffixes
            text += self._peek()
            self._advance()
        if value > 0xFFFF:
            raise CompileError(
                f"integer literal {text} exceeds 16 bits", line, col,
                self.filename)
        return Token(TokenType.NUMBER, text, line, col, value)

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenType.EOF, "", self.line, self.col))
                return tokens
            line, col = self.line, self.col
            ch = self._peek()

            if ch.isalpha() or ch == "_":
                start = self.pos
                while self._peek().isalnum() or self._peek() == "_":
                    self._advance()
                text = self.source[start:self.pos]
                kind = (TokenType.KEYWORD if text in KEYWORDS
                        else TokenType.IDENT)
                tokens.append(Token(kind, text, line, col))
                continue

            if ch.isdigit():
                tokens.append(self._lex_number())
                continue

            if ch == "'":
                self._advance()
                if self._peek() == "\\":
                    value = ord(self._read_escape())
                else:
                    if not self._peek():
                        raise self._error("unterminated char literal")
                    value = ord(self._peek())
                    self._advance()
                if self._peek() != "'":
                    raise self._error("unterminated char literal")
                self._advance()
                tokens.append(Token(TokenType.CHAR, f"'{chr(value)}'",
                                    line, col, value & 0xFF))
                continue

            if ch == '"':
                self._advance()
                chars: List[str] = []
                while self._peek() and self._peek() != '"':
                    if self._peek() == "\\":
                        chars.append(self._read_escape())
                    else:
                        chars.append(self._peek())
                        self._advance()
                if self._peek() != '"':
                    raise self._error("unterminated string literal")
                self._advance()
                tokens.append(Token(TokenType.STRING, "".join(chars),
                                    line, col))
                continue

            for punct in PUNCTUATORS:
                if self.source.startswith(punct, self.pos):
                    self._advance(len(punct))
                    tokens.append(Token(TokenType.PUNCT, punct, line, col))
                    break
            else:
                raise self._error(f"stray character {ch!r}")


def tokenize(source: str, filename: str = "<minic>") -> List[Token]:
    return _Lexer(source, filename).tokenize()
