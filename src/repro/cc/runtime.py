"""Hand-written assembly runtime for compiled MiniC.

The MSP430 core has no multiply or divide instructions (the FR5969's
MPY32 peripheral is not modeled), so the compiler calls these helpers.
Contract: helpers clobber **R12-R15 only** and return results in R12 —
that is what lets the code generator keep expression temporaries in
R5-R11 across helper calls.

Also here: ``__aft_check_index``, the Feature-Limited bounds-check
helper.  The original Amulet toolchain implemented its array check
out-of-line; the call/return overhead is why the paper's Table 1 shows
Feature Limited with the *most* expensive memory accesses (41 cycles
vs. 29/32 for the inlined MPU / Software-Only checks).
"""

from __future__ import annotations

from repro.ports import DONE_PORT, FAULT_PORT

RUNTIME_ASM = """
        .text
        .global __mulhi, __udivmod, __udivhi, __uremhi
        .global __divhi, __remhi
        .global __ashlhi, __ashrhi, __lshrhi
        .global __aft_check_index

; R12 * R13 -> R12 (low 16 bits; sign-agnostic)
__mulhi:
        MOV R12, R14
        MOV #0, R12
        TST R13
        JEQ .mul_done
.mul_loop:
        BIT #1, R13
        JEQ .mul_skip
        ADD R14, R12
.mul_skip:
        RLA R14
        CLRC
        RRC R13
        JNE .mul_loop
.mul_done:
        RET

; unsigned R12 / R13 -> quotient R12, remainder R15
; divide-by-zero yields quotient 0xFFFF, remainder = dividend
__udivmod:
        TST R13
        JNE .div_ok
        MOV R12, R15
        MOV #0xFFFF, R12
        RET
.div_ok:
        MOV #0, R15
        MOV #16, R14
.div_loop:
        RLA R12
        RLC R15
        CMP R13, R15
        JLO .div_skip
        SUB R13, R15
        BIS #1, R12
.div_skip:
        DEC R14
        JNE .div_loop
        RET

__udivhi:
        CALL #__udivmod
        RET

__uremhi:
        CALL #__udivmod
        MOV R15, R12
        RET

; signed division, C truncation toward zero
__divhi:
        MOV R12, R14
        XOR R13, R14            ; sign of the quotient
        PUSH R14
        TST R12
        JGE .divs_1
        INV R12
        INC R12
.divs_1:
        TST R13
        JGE .divs_2
        INV R13
        INC R13
.divs_2:
        CALL #__udivmod
        POP R14
        TST R14
        JGE .divs_done
        INV R12
        INC R12
.divs_done:
        RET

; signed remainder: sign follows the dividend (C semantics)
__remhi:
        PUSH R12
        TST R12
        JGE .rems_1
        INV R12
        INC R12
.rems_1:
        TST R13
        JGE .rems_2
        INV R13
        INC R13
.rems_2:
        CALL #__udivmod
        MOV R15, R12
        POP R14
        TST R14
        JGE .rems_done
        INV R12
        INC R12
.rems_done:
        RET

; R12 << (R13 & 15) -> R12
__ashlhi:
        AND #15, R13
        JEQ .shl_done
.shl_loop:
        RLA R12
        DEC R13
        JNE .shl_loop
.shl_done:
        RET

; arithmetic R12 >> (R13 & 15) -> R12
__ashrhi:
        AND #15, R13
        JEQ .shr_done
.shr_loop:
        RRA R12
        DEC R13
        JNE .shr_loop
.shr_done:
        RET

; logical R12 >> (R13 & 15) -> R12
__lshrhi:
        AND #15, R13
        JEQ .lshr_done
.lshr_loop:
        CLRC
        RRC R12
        DEC R13
        JNE .lshr_loop
.lshr_done:
        RET

; Feature-Limited array bounds check: index R12, length R13.
; A negative index is a huge unsigned value, so one unsigned compare
; covers both ends.  Faults never return.
__aft_check_index:
        CMP R13, R12
        JHS .idx_fault
        RET
.idx_fault:
        BR #__fault
"""

FAULT_STUB_ASM = f"""
        .text
        .global __fault

; Standalone fault sink for bare-metal tests (the kernel installs its
; own __fault with app logging instead).  Reports through the fault
; port, halts through the done port, then parks the CPU.
__fault:
        MOV #1, &0x{FAULT_PORT:04X}
        MOV #1, &0x{DONE_PORT:04X}
.fault_spin:
        JMP .fault_spin
"""


def runtime_asm(with_fault_stub: bool = True) -> str:
    """The runtime library source; one copy links into every firmware."""
    if with_fault_stub:
        return RUNTIME_ASM + FAULT_STUB_ASM
    return RUNTIME_ASM
