"""MiniC: the C compiler at the heart of the AFT.

The paper's contribution hinges on a compiler that (a) accepts real C —
pointers, function pointers, recursion — and (b) inserts isolation
checks whose *number and shape* depend on the chosen memory model.
MiniC is that compiler, targeting the simulated MSP430:

* 16-bit ``int``/``unsigned``, 8-bit ``char`` (unsigned), pointers,
  1-D arrays, structs, function pointers
* full expression and statement set (``goto`` parses but is rejected by
  AFT phase 1, like inline ``asm``)
* a reference AST interpreter (:mod:`repro.cc.interp`) used for
  differential testing of the code generator

Public surface: :func:`compile_unit` produces assembly text plus the
analysis facts (call graph edges, access counts) the AFT phases consume.
"""

from repro.cc.lexer import tokenize
from repro.cc.parser import parse
from repro.cc.sema import analyze, LanguageProfile
from repro.cc.codegen import CodeGenerator, CompiledUnit, compile_unit
from repro.cc.interp import Interpreter

__all__ = [
    "tokenize", "parse", "analyze", "LanguageProfile",
    "CodeGenerator", "CompiledUnit", "compile_unit", "Interpreter",
]
