"""AST-level optimizer for MiniC.

Runs **before** semantic analysis (``parse → optimize → analyze →
generate``), so every later stage — sema's access enumeration, the
AFT's check insertion, codegen — sees the simplified tree and all
bookkeeping stays consistent.

Passes (all semantics-preserving under MiniC's 16-bit rules):

* **constant folding** — integer arithmetic/logic/comparisons over
  literals, with the same wrap/truncation semantics as the runtime
  (division folds only when the divisor is a nonzero literal);
* **algebraic identities** — ``x+0``, ``x-0``, ``x*1``, ``x|0``,
  ``x^0``, ``x&-1``, ``x<<0``, ``x>>0`` reduce to ``x``; ``x*0`` and
  ``x&0`` reduce to ``0`` only when ``x`` has no side effects;
* **branch pruning** — ``if (k)`` keeps one arm, ``while (0)`` and
  constant-false ``for`` conditions drop the loop, constant
  short-circuits (``0 && x``, ``1 || x``) fold;
* **ternary folding** — ``k ? a : b`` picks an arm.

The optimizer never touches lvalue structure, calls, or anything with
side effects, so check *sites* (pointer dereferences, array accesses,
indirect calls) are preserved exactly unless the whole statement was
provably unreachable.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.cc import ast

MASK = 0xFFFF

_FOLDABLE_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 15),
    ">>": lambda a, b: _signed(a) >> (b & 15),
}

_FOLDABLE_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: _signed(a) < _signed(b),
    ">": lambda a, b: _signed(a) > _signed(b),
    "<=": lambda a, b: _signed(a) <= _signed(b),
    ">=": lambda a, b: _signed(a) >= _signed(b),
}


def _signed(value: int) -> int:
    value &= MASK
    return value - 0x10000 if value & 0x8000 else value


def _literal(expr) -> Optional[int]:
    if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
        return expr.value & MASK
    return None


def _make_literal(value: int, line: int) -> ast.IntLiteral:
    return ast.IntLiteral(line=line, value=value & MASK)


def _is_pure(expr: ast.Expr) -> bool:
    """No side effects and no memory access that could trap."""
    if isinstance(expr, (ast.IntLiteral, ast.CharLiteral, ast.Ident,
                         ast.SizeOf, ast.StringLiteral)):
        return True
    if isinstance(expr, ast.Unary):
        return expr.op in ("-", "~", "!") and _is_pure(expr.operand)
    if isinstance(expr, ast.Binary):
        return _is_pure(expr.left) and _is_pure(expr.right)
    if isinstance(expr, ast.Cast):
        return _is_pure(expr.operand)
    return False


class Optimizer:
    """One pass of fold/prune; :func:`optimize_unit` iterates to a
    fixed point (bounded)."""

    def __init__(self) -> None:
        self.changed = False

    # -- expressions ---------------------------------------------------------
    def expr(self, node: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if node is None:
            return None
        method = getattr(self, f"_expr_{type(node).__name__.lower()}",
                         None)
        if method is None:
            return self._expr_generic(node)
        return method(node)

    def _expr_generic(self, node: ast.Expr) -> ast.Expr:
        for name, value in vars(node).items():
            if isinstance(value, ast.Expr):
                setattr(node, name, self.expr(value))
            elif isinstance(value, list):
                setattr(node, name,
                        [self.expr(v) if isinstance(v, ast.Expr) else v
                         for v in value])
        return node

    def _expr_binary(self, node: ast.Binary) -> ast.Expr:
        node.left = self.expr(node.left)
        node.right = self.expr(node.right)
        left = _literal(node.left)
        right = _literal(node.right)
        op = node.op

        # constant folding
        if left is not None and right is not None:
            if op in _FOLDABLE_BINOPS:
                self.changed = True
                return _make_literal(_FOLDABLE_BINOPS[op](left, right),
                                     node.line)
            if op in _FOLDABLE_COMPARISONS:
                self.changed = True
                return _make_literal(
                    int(_FOLDABLE_COMPARISONS[op](left, right)),
                    node.line)
            if op in ("/", "%") and right != 0:
                self.changed = True
                a, b = _signed(left), _signed(right)
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                result = q if op == "/" else a - q * b
                return _make_literal(result, node.line)
            if op == "&&":
                self.changed = True
                return _make_literal(int(bool(left) and bool(right)),
                                     node.line)
            if op == "||":
                self.changed = True
                return _make_literal(int(bool(left) or bool(right)),
                                     node.line)

        # constant short-circuits
        if op == "&&" and left == 0:
            self.changed = True
            return _make_literal(0, node.line)
        if op == "||" and left is not None and left != 0:
            self.changed = True
            return _make_literal(1, node.line)

        # algebraic identities (right-literal forms)
        if right is not None:
            if (op, right) in ((("+", 0)), ("-", 0), ("|", 0),
                               ("^", 0), ("<<", 0), (">>", 0)):
                self.changed = True
                return node.left
            if op == "*" and right == 1:
                self.changed = True
                return node.left
            if op == "&" and right == 0xFFFF:
                self.changed = True
                return node.left
            if op in ("*", "&") and right == 0 and _is_pure(node.left):
                self.changed = True
                return _make_literal(0, node.line)
        if left is not None:
            if op == "+" and left == 0:
                self.changed = True
                return node.right
            if op == "*" and left == 1:
                self.changed = True
                return node.right
            if op in ("*", "&") and left == 0 and _is_pure(node.right):
                self.changed = True
                return _make_literal(0, node.line)
        return node

    def _expr_unary(self, node: ast.Unary) -> ast.Expr:
        node.operand = self.expr(node.operand)
        value = _literal(node.operand)
        if value is not None and node.op in ("-", "~", "!"):
            self.changed = True
            folded = {"-": -value, "~": ~value,
                      "!": int(value == 0)}[node.op]
            return _make_literal(folded, node.line)
        # --x == x is not an identity; leave ++/--/&/* alone
        return node

    def _expr_conditional(self, node: ast.Conditional) -> ast.Expr:
        node.cond = self.expr(node.cond)
        node.then = self.expr(node.then)
        node.otherwise = self.expr(node.otherwise)
        value = _literal(node.cond)
        if value is not None:
            self.changed = True
            return node.then if value else node.otherwise
        return node

    def _expr_cast(self, node: ast.Cast) -> ast.Expr:
        node.operand = self.expr(node.operand)
        from repro.cc.types import CharType, IntType
        value = _literal(node.operand)
        if value is not None and isinstance(node.target_type, CharType):
            self.changed = True
            return _make_literal(value & 0xFF, node.line)
        if value is not None and isinstance(node.target_type, IntType):
            self.changed = True
            return _make_literal(value, node.line)
        return node

    # -- statements --------------------------------------------------------------
    def stmt(self, node: Optional[ast.Stmt]) -> Optional[ast.Stmt]:
        if node is None:
            return None
        if isinstance(node, ast.Block):
            node.statements = [
                out for out in (self.stmt(s) for s in node.statements)
                if out is not None
            ]
            return node
        if isinstance(node, ast.ExprStmt):
            node.expr = self.expr(node.expr)
            if node.expr is not None and _is_pure(node.expr):
                # a pure expression statement has no effect at all
                self.changed = True
                return None
            return node
        if isinstance(node, ast.VarDecl):
            if isinstance(node.init, list):
                node.init = [self.expr(e) for e in node.init]
            elif isinstance(node.init, ast.Expr) and \
                    not isinstance(node.init, ast.StringLiteral):
                node.init = self.expr(node.init)
            return node
        if isinstance(node, ast.If):
            node.cond = self.expr(node.cond)
            node.then = self.stmt(node.then)
            node.otherwise = self.stmt(node.otherwise)
            value = _literal(node.cond)
            if value is not None:
                self.changed = True
                chosen = node.then if value else node.otherwise
                return chosen if chosen is not None else None
            return node
        if isinstance(node, ast.While):
            node.cond = self.expr(node.cond)
            node.body = self.stmt(node.body)
            value = _literal(node.cond)
            if value == 0:
                self.changed = True
                return None
            return node
        if isinstance(node, ast.DoWhile):
            node.body = self.stmt(node.body)
            node.cond = self.expr(node.cond)
            return node
        if isinstance(node, ast.For):
            node.init = self.stmt(node.init)
            node.cond = self.expr(node.cond)
            node.step = self.expr(node.step)
            node.body = self.stmt(node.body)
            if _literal(node.cond) == 0:
                self.changed = True
                # the init clause may still have effects
                return node.init
            return node
        if isinstance(node, ast.Return):
            node.value = self.expr(node.value)
            return node
        if isinstance(node, ast.Switch):
            node.cond = self.expr(node.cond)
            node.cases = [
                (value, [out for out in (self.stmt(s) for s in body)
                         if out is not None])
                for value, body in node.cases
            ]
            return node
        if isinstance(node, ast.LabelStmt):
            node.statement = self.stmt(node.statement)
            return node
        return node

    # -- top level ----------------------------------------------------------------
    def unit(self, unit: ast.TranslationUnit) -> ast.TranslationUnit:
        for function in unit.functions:
            if function.body is not None:
                function.body = self.stmt(function.body)
        return unit


def optimize_unit(unit: ast.TranslationUnit,
                  max_passes: int = 8) -> ast.TranslationUnit:
    """Iterate fold/prune passes to a fixed point."""
    for _ in range(max_passes):
        optimizer = Optimizer()
        unit = optimizer.unit(unit)
        if not optimizer.changed:
            break
    return unit
