"""MiniC type system.

Sizes follow the MSP430 ABI: ``int``/``unsigned``/pointers are 2 bytes,
``char`` is 1 byte and **unsigned** (the MSP430 byte instructions
zero-extend into registers, and TI's compiler defaults char to unsigned;
the reference interpreter matches).  There are no longs or floats —
the paper's apps don't need them and the MCU has no FPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError


class CType:
    """Base class; concrete types below."""

    size: int = 0
    align: int = 1

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, CharType))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_pointer

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_signed(self) -> bool:
        return isinstance(self, IntType) and self.signed

    def decay(self) -> "CType":
        """Array-to-pointer decay; identity for other types."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        return self


@dataclass(frozen=True)
class VoidType(CType):
    size: int = 0
    align: int = 1

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    signed: bool = True
    size: int = 2
    align: int = 2

    def __str__(self) -> str:
        return "int" if self.signed else "unsigned"


@dataclass(frozen=True)
class CharType(CType):
    size: int = 1
    align: int = 1

    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class PointerType(CType):
    target: CType = field(default_factory=VoidType)
    size: int = 2
    align: int = 2

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType = field(default_factory=IntType)
    length: int = 0

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.length

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.element.align

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FunctionType(CType):
    ret: CType = field(default_factory=VoidType)
    params: Tuple[CType, ...] = ()
    variadic: bool = False
    size: int = 0
    align: int = 2

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params) or "void"
        return f"{self.ret}({params})"


@dataclass
class StructField:
    name: str
    ctype: CType
    offset: int


class StructType(CType):
    """A named struct with laid-out fields."""

    def __init__(self, name: str):
        self.name = name
        self.fields: Dict[str, StructField] = {}
        self._size = 0
        self.complete = False

    def add_field(self, name: str, ctype: CType, line: int = 0) -> None:
        if name in self.fields:
            raise CompileError(f"duplicate field {name!r} in struct "
                               f"{self.name}", line)
        offset = self._size
        if ctype.align > 1 and offset % ctype.align:
            offset += ctype.align - offset % ctype.align
        self.fields[name] = StructField(name, ctype, offset)
        self._size = offset + ctype.size

    def finish(self) -> None:
        if self._size % 2:
            self._size += 1      # tail padding to word alignment
        self.complete = True

    @property
    def size(self) -> int:  # type: ignore[override]
        return self._size

    @property
    def align(self) -> int:  # type: ignore[override]
        return 2

    def field(self, name: str, line: int = 0) -> StructField:
        if name not in self.fields:
            raise CompileError(
                f"struct {self.name} has no field {name!r}", line)
        return self.fields[name]

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)


INT = IntType(signed=True)
UINT = IntType(signed=False)
CHAR = CharType()
VOID = VoidType()


def common_type(left: CType, right: CType) -> CType:
    """Usual arithmetic conversions, 16-bit flavoured: chars promote to
    int; mixing signed and unsigned yields unsigned."""
    left = left.decay()
    right = right.decay()
    if left.is_pointer:
        return left
    if right.is_pointer:
        return right
    if not (left.is_integer and right.is_integer):
        raise CompileError(f"no common type for {left} and {right}")
    left_signed = not isinstance(left, IntType) or left.signed
    right_signed = not isinstance(right, IntType) or right.signed
    # chars are unsigned but promote to (signed) int first, per C rules.
    if isinstance(left, CharType):
        left_signed = True
    if isinstance(right, CharType):
        right_signed = True
    return INT if (left_signed and right_signed) else UINT


def assignable(target: CType, value: CType) -> bool:
    """Loose C assignment compatibility."""
    target = target.decay()
    value = value.decay()
    if target.is_integer and value.is_integer:
        return True
    if target.is_pointer and value.is_pointer:
        t, v = target.target, value.target
        if isinstance(t, VoidType) or isinstance(v, VoidType):
            return True
        return _compatible(t, v)
    if target.is_pointer and value.is_integer:
        return True    # allowed with a warning in C89; apps use it
    if isinstance(target, StructType) and target is value:
        return True
    if isinstance(target, FunctionType) and isinstance(value, FunctionType):
        return True
    if target.is_pointer and isinstance(value, FunctionType):
        return True
    return False


def _compatible(a: CType, b: CType) -> bool:
    if type(a) is not type(b):
        return a.is_integer and b.is_integer and a.size == b.size
    if isinstance(a, PointerType):
        return _compatible(a.target, b.target)
    if isinstance(a, StructType):
        return a is b
    if isinstance(a, FunctionType):
        return True
    return True
