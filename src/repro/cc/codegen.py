"""MSP430 code generation for MiniC.

Calling convention (matches the MSP430 EABI closely enough for the
paper's purposes):

* arguments 1-4 in ``R12..R15``, further arguments pushed right-to-left
  and popped by the caller; result in ``R12``
* ``R4`` is the frame pointer; ``R4-R10`` are callee-saved,
  ``R11-R15`` caller-saved
* runtime helpers (``__mulhi`` & co.) clobber only ``R12-R15``

Frame layout after the prologue (``PUSH R4; MOV SP, R4``)::

        ...                      higher addresses
        stack arg 2      6(R4)
        stack arg 1      4(R4)
        return address   2(R4)
        saved R4         0(R4)   <- R4
        local/param N   -2(R4)
        ...
        saved callee regs        <- SP

Register allocation is a pseudo-stack: expression temporaries occupy
``R11, R10, ..., R5`` in LIFO order, spilling the deepest temporary to
the hardware stack when more than seven are live.

**Isolation checks** are emitted through a :class:`CheckPolicy`.  The
policies (one per paper memory model) live in :mod:`repro.aft.models`;
the base class here is a no-op so the compiler stands alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.cc import ast
from repro.cc.parser import parse, _const_eval
from repro.cc.sema import FULL_C, LanguageProfile, SemaResult, analyze
from repro.cc.symbols import ApiTable, Symbol, SymbolKind
from repro.cc.types import (
    ArrayType,
    CharType,
    CType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
)

_POOL = ("R11", "R10", "R9", "R8", "R7", "R6", "R5")
_ARG_REGS = ("R12", "R13", "R14", "R15")
# Private ABI refinement: R11 is callee-saved too, so expression
# temporaries survive calls without caller-save bookkeeping.  Every
# function in the system comes from this compiler or from hand-written
# runtime/gate assembly that preserves R4-R11.
_CALLEE_SAVED = frozenset({"R5", "R6", "R7", "R8", "R9", "R10", "R11"})

FAULT_SYMBOL = "__fault"


class CheckPolicy:
    """Isolation-check emission hooks; the default emits nothing
    (the paper's *No Isolation* configuration)."""

    name = "none"

    def data_pointer_check(self, gen: "_FunctionEmitter",
                           reg: str, is_write: bool) -> None:
        """Called with the address register before every load/store
        through a pointer."""

    def fn_pointer_check(self, gen: "_FunctionEmitter", reg: str) -> None:
        """Called with the target register before an indirect call."""

    def array_index_check(self, gen: "_FunctionEmitter", reg: str,
                          length: int) -> None:
        """Called with the index register before a direct array access
        of known length."""

    def return_check(self, gen: "_FunctionEmitter") -> None:
        """Called just before the function epilogue; the return address
        is at ``2(R4)``."""

    def stack_entry_check(self, gen: "_FunctionEmitter") -> None:
        """Called at function entry, after the frame is established."""


@dataclass
class _Value:
    """A live expression temporary on the pseudo-stack."""

    reg: str
    depth: int
    spilled: bool = False


class _RegStack:
    """LIFO register allocator over the scratch pool with spilling."""

    def __init__(self, emitter: "_FunctionEmitter"):
        self.emitter = emitter
        self.stack: List[_Value] = []

    def alloc(self) -> _Value:
        depth = len(self.stack)
        reg = _POOL[depth % len(_POOL)]
        if depth >= len(_POOL):
            victim = self.stack[depth - len(_POOL)]
            assert victim.reg == reg and not victim.spilled
            self.emitter.emit(f"PUSH {reg}")
            victim.spilled = True
        value = _Value(reg, depth)
        self.stack.append(value)
        self.emitter.note_reg_use(reg)
        return value

    def free(self, value: _Value) -> None:
        top = self.stack.pop()
        if top is not value:
            raise CompileError(
                "internal: register stack freed out of order")
        depth = value.depth
        if depth >= len(_POOL):
            revived = self.stack[depth - len(_POOL)]
            assert revived.spilled and revived.reg == value.reg
            self.emitter.emit(f"POP {value.reg}")
            revived.spilled = False

    @property
    def live_regs(self) -> List[str]:
        return [v.reg for v in self.stack if not v.spilled]

    def assert_empty(self, line: int) -> None:
        if self.stack:
            raise CompileError(
                f"internal: leaked expression temporaries", line)


@dataclass
class CompiledUnit:
    """The output of :func:`compile_unit`."""

    asm: str
    sema: SemaResult
    function_labels: Dict[str, str]
    frame_sizes: Dict[str, int]           # fixed frame bytes per function
    text_section: str
    data_section: str
    string_count: int = 0


class CodeGenerator:
    """Drives per-function emission for one translation unit."""

    def __init__(self,
                 checks: Optional[CheckPolicy] = None,
                 text_section: str = ".text",
                 data_section: str = ".data",
                 label_prefix: str = ""):
        self.checks = checks if checks is not None else CheckPolicy()
        self.text_section = text_section
        self.data_section = data_section
        self.label_prefix = label_prefix
        self._string_labels: Dict[str, str] = {}
        self._data_lines: List[str] = []
        self._text_lines: List[str] = []
        self.frame_sizes: Dict[str, int] = {}
        self.function_labels: Dict[str, str] = {}

    # -- label helpers ------------------------------------------------------
    def mangle(self, name: str) -> str:
        return f"{self.label_prefix}{name}"

    def string_label(self, text: str) -> str:
        if text not in self._string_labels:
            label = f"{self.label_prefix}.str{len(self._string_labels)}"
            self._string_labels[text] = label
        return self._string_labels[text]

    # -- top level ------------------------------------------------------------
    def generate(self, sema: SemaResult) -> CompiledUnit:
        unit = sema.unit
        self._text_lines = [f"        .section {self.text_section}"]
        self._data_lines = [f"        .section {self.data_section}"]

        for function in unit.functions:
            if function.body is None:
                continue
            label = self.mangle(function.name)
            self.function_labels[function.name] = label
            if not function.is_static:
                self._text_lines.append(f"        .global {label}")
            emitter = _FunctionEmitter(self, function, sema)
            self._text_lines.extend(emitter.run())
            self.frame_sizes[function.name] = emitter.frame_size

        for decl in unit.globals:
            self._emit_global(decl)

        for text, label in self._string_labels.items():
            escaped = text.replace("\\", "\\\\").replace('"', '\\"') \
                          .replace("\n", "\\n").replace("\t", "\\t") \
                          .replace("\r", "\\r").replace("\0", "\\0")
            self._data_lines.append(f"{label}:")
            self._data_lines.append(f'        .asciz "{escaped}"')
            self._data_lines.append("        .align 2")

        asm = "\n".join(self._text_lines + [""] + self._data_lines) + "\n"
        return CompiledUnit(
            asm=asm, sema=sema,
            function_labels=dict(self.function_labels),
            frame_sizes=dict(self.frame_sizes),
            text_section=self.text_section,
            data_section=self.data_section,
            string_count=len(self._string_labels))

    def _emit_global(self, decl: ast.VarDecl) -> None:
        lines = self._data_lines
        label = self.mangle(decl.name)
        decl.symbol.label = label
        if not decl.is_static:
            lines.append(f"        .global {label}")
        lines.append("        .align 2")
        lines.append(f"{label}:")
        ctype = decl.ctype
        if decl.init is None:
            lines.append(f"        .space {max(ctype.size, 1)}")
            return
        if isinstance(decl.init, list):
            element = ctype.element if isinstance(ctype, ArrayType) \
                else IntType()
            emitted = 0
            for item in decl.init:
                value = _const_eval(item)
                if value is None:
                    raise CompileError(
                        f"global {decl.name!r} initializer must be "
                        f"constant", decl.line)
                directive = ".byte" if isinstance(element, CharType) \
                    else ".word"
                lines.append(f"        {directive} {value & 0xFFFF}")
                emitted += element.size
            if emitted < ctype.size:
                lines.append(f"        .space {ctype.size - emitted}")
            return
        if isinstance(decl.init, ast.StringLiteral):
            if isinstance(ctype, ArrayType):
                escaped = decl.init.value.replace("\\", "\\\\") \
                    .replace('"', '\\"')
                lines.append(f'        .asciz "{escaped}"')
                pad = ctype.size - (len(decl.init.value) + 1)
                if pad > 0:
                    lines.append(f"        .space {pad}")
                lines.append("        .align 2")
            else:
                string_label = self.string_label(decl.init.value)
                lines.append(f"        .word {string_label}")
            return
        value = _const_eval(decl.init)
        if value is None:
            raise CompileError(
                f"global {decl.name!r} initializer must be constant",
                decl.line)
        if isinstance(ctype, CharType):
            lines.append(f"        .byte {value & 0xFF}")
            lines.append("        .align 2")
        else:
            lines.append(f"        .word {value & 0xFFFF}")


class _FunctionEmitter:
    """Emits one function."""

    def __init__(self, gen: CodeGenerator, function: ast.FunctionDef,
                 sema: SemaResult):
        self.gen = gen
        self.function = function
        self.sema = sema
        self.checks = gen.checks
        self.lines: List[str] = []
        self.regs = _RegStack(self)
        self.used_callee: List[str] = []
        self.local_cursor = 0           # grows downward (positive bytes)
        self.label_counter = 0
        self.break_labels: List[str] = []
        self.continue_labels: List[str] = []
        self.epilogue_label = self._new_label("epilogue")
        self.frame_size = 0

    # -- infrastructure -------------------------------------------------------
    def emit(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def note_reg_use(self, reg: str) -> None:
        if reg in _CALLEE_SAVED and reg not in self.used_callee:
            self.used_callee.append(reg)

    def _new_label(self, hint: str = "L") -> str:
        self.label_counter += 1
        return (f".L_{self.gen.label_prefix}{self.function.name}"
                f"_{hint}{self.label_counter}")

    def _error(self, message: str, line: int) -> CompileError:
        return CompileError(message, line)

    def _alloc_local(self, size: int, align: int) -> int:
        """Returns a negative FP offset for a new local slot."""
        size = max(size, 1)
        self.local_cursor += size
        if align > 1 and self.local_cursor % align:
            self.local_cursor += align - self.local_cursor % align
        return -self.local_cursor

    # -- driver -------------------------------------------------------------------
    def run(self) -> List[str]:
        function = self.function
        body_lines: List[str] = []

        # Home parameters into stack slots.
        homing: List[str] = []
        for index, param in enumerate(function.params):
            offset = self._alloc_local(max(param.ctype.size, 2),
                                       param.ctype.align)
            param.symbol.frame_offset = offset
            if index < len(_ARG_REGS):
                if isinstance(param.ctype, CharType):
                    homing.append(
                        f"        MOV.B {_ARG_REGS[index]}, "
                        f"{offset}(R4)")
                else:
                    homing.append(
                        f"        MOV {_ARG_REGS[index]}, {offset}(R4)")
            else:
                # Stack argument: copy from the caller's frame so all
                # params are addressable uniformly.
                src_offset = 4 + 2 * (index - len(_ARG_REGS))
                homing.append(
                    f"        MOV {src_offset}(R4), {offset}(R4)")

        # Pre-assign offsets for every local declaration.
        for stmt in ast.walk_statements(function.body):
            if isinstance(stmt, ast.VarDecl):
                offset = self._alloc_local(stmt.ctype.size,
                                           stmt.ctype.align)
                stmt.symbol.frame_offset = offset

        self.lines = []
        self._stmt(function.body)
        self.regs.assert_empty(function.line)
        body_lines = self.lines

        # Prologue / epilogue now that frame size and reg use are known.
        local_bytes = (self.local_cursor + 1) & ~1
        self.frame_size = (4 + local_bytes + 2 * len(self.used_callee))
        out: List[str] = []
        label = self.gen.function_labels[function.name]
        out.append(f"{label}:")
        out.append("        PUSH R4")
        out.append("        MOV SP, R4")
        if local_bytes:
            out.append(f"        SUB #{local_bytes}, SP")
        for reg in self.used_callee:
            out.append(f"        PUSH {reg}")

        # Optional stack-overflow entry check.
        entry_check = _CheckCapture(self)
        self.checks.stack_entry_check(entry_check)
        out.extend(entry_check.lines)

        out.extend(homing)
        out.extend(body_lines)

        out.append(f"{self.epilogue_label}:")
        return_check = _CheckCapture(self)
        self.checks.return_check(return_check)
        out.extend(return_check.lines)
        for reg in reversed(self.used_callee):
            out.append(f"        POP {reg}")
        out.append("        MOV R4, SP")
        out.append("        POP R4")
        out.append("        RET")
        out.append("")
        return out

    # -- statements ------------------------------------------------------------------
    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            self._stmt_vardecl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                value = self._expr(stmt.expr)
                self.regs.free(value)
        elif isinstance(stmt, ast.If):
            else_label = self._new_label("else")
            end_label = self._new_label("endif")
            self._condition(stmt.cond, false_label=else_label)
            self._stmt(stmt.then)
            if stmt.otherwise is not None:
                self.emit(f"JMP {end_label}")
                self.emit_label(else_label)
                self._stmt(stmt.otherwise)
                self.emit_label(end_label)
            else:
                self.emit_label(else_label)
        elif isinstance(stmt, ast.While):
            top = self._new_label("while")
            end = self._new_label("endwhile")
            self.emit_label(top)
            self._condition(stmt.cond, false_label=end)
            self.break_labels.append(end)
            self.continue_labels.append(top)
            self._stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            self.emit(f"JMP {top}")
            self.emit_label(end)
        elif isinstance(stmt, ast.DoWhile):
            top = self._new_label("do")
            check = self._new_label("docheck")
            end = self._new_label("enddo")
            self.emit_label(top)
            self.break_labels.append(end)
            self.continue_labels.append(check)
            self._stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            self.emit_label(check)
            self._condition(stmt.cond, false_label=end)
            self.emit(f"JMP {top}")
            self.emit_label(end)
        elif isinstance(stmt, ast.For):
            top = self._new_label("for")
            step_label = self._new_label("forstep")
            end = self._new_label("endfor")
            if stmt.init is not None:
                self._stmt(stmt.init)
            self.emit_label(top)
            if stmt.cond is not None:
                self._condition(stmt.cond, false_label=end)
            self.break_labels.append(end)
            self.continue_labels.append(step_label)
            self._stmt(stmt.body)
            self.break_labels.pop()
            self.continue_labels.pop()
            self.emit_label(step_label)
            if stmt.step is not None:
                value = self._expr(stmt.step)
                self.regs.free(value)
            self.emit(f"JMP {top}")
            self.emit_label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._expr(stmt.value)
                self.emit(f"MOV {value.reg}, R12")
                self.regs.free(value)
            self.emit(f"JMP {self.epilogue_label}")
        elif isinstance(stmt, ast.Break):
            if not self.break_labels:
                raise self._error("break outside loop/switch", stmt.line)
            self.emit(f"JMP {self.break_labels[-1]}")
        elif isinstance(stmt, ast.Continue):
            if not self.continue_labels:
                raise self._error("continue outside loop", stmt.line)
            self.emit(f"JMP {self.continue_labels[-1]}")
        elif isinstance(stmt, ast.Switch):
            self._stmt_switch(stmt)
        elif isinstance(stmt, ast.LabelStmt):
            self._stmt(stmt.statement)
        else:
            raise self._error(
                f"cannot generate {type(stmt).__name__}", stmt.line)

    def _stmt_vardecl(self, stmt: ast.VarDecl) -> None:
        if stmt.init is None:
            return
        offset = stmt.symbol.frame_offset
        ctype = stmt.ctype
        if isinstance(stmt.init, list):
            element = ctype.element if isinstance(ctype, ArrayType) \
                else IntType()
            cursor = offset
            for item in stmt.init:
                const = _const_eval(item)
                suffix = ".B" if isinstance(element, CharType) else ""
                if const is not None:
                    self.emit(f"MOV{suffix} #{const}, {cursor}(R4)")
                else:
                    value = self._expr(item)
                    self.emit(f"MOV{suffix} {value.reg}, {cursor}(R4)")
                    self.regs.free(value)
                cursor += element.size
            remaining = ctype.size - len(stmt.init) * element.size
            zero_cursor = cursor
            while remaining >= 2:
                self.emit(f"MOV #0, {zero_cursor}(R4)")
                zero_cursor += 2
                remaining -= 2
            if remaining:
                self.emit(f"MOV.B #0, {zero_cursor}(R4)")
            return
        if isinstance(stmt.init, ast.StringLiteral) and \
                isinstance(ctype, ArrayType):
            blob = stmt.init.value.encode("latin1") + b"\0"
            for index, byte in enumerate(blob):
                self.emit(f"MOV.B #{byte}, {offset + index}(R4)")
            return
        value = self._expr(stmt.init)
        suffix = ".B" if isinstance(ctype, CharType) else ""
        self.emit(f"MOV{suffix} {value.reg}, {offset}(R4)")
        self.regs.free(value)

    def _stmt_switch(self, stmt: ast.Switch) -> None:
        value = self._expr(stmt.cond)
        end = self._new_label("endswitch")
        case_labels: List[Tuple[Optional[int], str]] = []
        default_label: Optional[str] = None
        for case_value, _body in stmt.cases:
            label = self._new_label("case")
            case_labels.append((case_value, label))
            if case_value is None:
                default_label = label
        for case_value, label in case_labels:
            if case_value is not None:
                self.emit(f"CMP #{case_value & 0xFFFF}, {value.reg}")
                self.emit(f"JEQ {label}")
        self.regs.free(value)
        self.emit(f"JMP {default_label if default_label else end}")
        self.break_labels.append(end)
        for (case_value, body), (_cv, label) in zip(stmt.cases,
                                                    case_labels):
            self.emit_label(label)
            for child in body:
                self._stmt(child)
        self.break_labels.pop()
        self.emit_label(end)

    # -- conditions (jump-threaded) -----------------------------------------------------
    _SIGNED_INVERSE = {"==": "JNE", "!=": "JEQ", "<": "JGE", ">=": "JL",
                       ">": "JGE", "<=": "JL"}
    _UNSIGNED_INVERSE = {"==": "JNE", "!=": "JEQ", "<": "JHS",
                         ">=": "JLO", ">": "JHS", "<=": "JLO"}

    def _condition(self, expr: ast.Expr, false_label: str) -> None:
        """Emit code that falls through when ``expr`` is true and jumps
        to ``false_label`` when false."""
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", ">", "<=", ">="):
            self._compare_jump(expr, false_label, invert=True)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            self._condition(expr.left, false_label)
            self._condition(expr.right, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            true_label = self._new_label("or_true")
            self._condition_true(expr.left, true_label)
            self._condition(expr.right, false_label)
            self.emit_label(true_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            true_label = self._new_label("not_true")
            self._condition(expr.operand, true_label)
            self.emit(f"JMP {false_label}")
            self.emit_label(true_label)
            return
        value = self._expr(expr)
        self.emit(f"TST {value.reg}")
        self.regs.free(value)
        self.emit(f"JEQ {false_label}")

    def _condition_true(self, expr: ast.Expr, true_label: str) -> None:
        """Jump to ``true_label`` when true, else fall through."""
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", ">", "<=", ">="):
            self._compare_jump(expr, true_label, invert=False)
            return
        value = self._expr(expr)
        self.emit(f"TST {value.reg}")
        self.regs.free(value)
        self.emit(f"JNE {true_label}")

    def _compare_jump(self, expr: ast.Binary, label: str,
                      invert: bool) -> None:
        signed = self._comparison_signed(expr)
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        # CMP src, dst computes dst - src: CMP right, left tests left ? right
        self.emit(f"CMP {right.reg}, {left.reg}")
        self.regs.free(right)
        self.regs.free(left)
        table_signed = {"==": "JEQ", "!=": "JNE", "<": "JL",
                        ">=": "JGE"}
        table_unsigned = {"==": "JEQ", "!=": "JNE", "<": "JLO",
                          ">=": "JHS"}
        # normalize > and <= by swapping into < / >= on the flags of
        # CMP right, left is messy; instead use the inverse tables.
        if op in (">", "<="):
            # left > right  <=>  right < left; re-emit with swap.
            # We already emitted CMP right, left; use:
            #   left >  right  -> JL on (right - left)?  Simpler: map via
            #   flags of left-right: > is (not Z) and >=.
            if invert:
                # jump when NOT (left > right)  <=> left <= right
                if op == ">":
                    # left <= right: JEQ or JL
                    jcc = "JL" if signed else "JLO"
                    self.emit(f"JEQ {label}")
                    self.emit(f"{jcc} {label}")
                else:  # op == "<=", jump when left > right
                    skip = self._new_label("cmp")
                    jcc = "JL" if signed else "JLO"
                    self.emit(f"JEQ {skip}")
                    self.emit(f"{'JGE' if signed else 'JHS'} {label}")
                    self.emit_label(skip)
            else:
                if op == ">":
                    # jump when left > right: not equal and >=
                    skip = self._new_label("cmp")
                    self.emit(f"JEQ {skip}")
                    self.emit(f"{'JGE' if signed else 'JHS'} {label}")
                    self.emit_label(skip)
                else:  # <=
                    jcc = "JL" if signed else "JLO"
                    self.emit(f"JEQ {label}")
                    self.emit(f"{jcc} {label}")
            return
        if invert:
            inverse = (self._SIGNED_INVERSE if signed
                       else self._UNSIGNED_INVERSE)
            self.emit(f"{inverse[op]} {label}")
        else:
            table = table_signed if signed else table_unsigned
            self.emit(f"{table[op]} {label}")

    @staticmethod
    def _comparison_signed(expr: ast.Binary) -> bool:
        left = expr.left.ctype.decay()
        right = expr.right.ctype.decay()
        if left.is_pointer or right.is_pointer:
            return False
        def is_signed(t: CType) -> bool:
            if isinstance(t, CharType):
                return True
            return isinstance(t, IntType) and t.signed
        return is_signed(left) and is_signed(right)

    # -- expressions -------------------------------------------------------------------
    def _expr(self, expr: ast.Expr) -> _Value:
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
            value = self.regs.alloc()
            self.emit(f"MOV #{expr.value & 0xFFFF}, {value.reg}")
            return value
        if isinstance(expr, ast.StringLiteral):
            label = self.gen.string_label(expr.value)
            value = self.regs.alloc()
            self.emit(f"MOV #{label}, {value.reg}")
            return value
        if isinstance(expr, ast.Ident):
            return self._expr_ident(expr)
        if isinstance(expr, ast.Unary):
            return self._expr_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._expr_incdec(expr.operand, expr.op,
                                     want_old=True, line=expr.line)
        if isinstance(expr, ast.Binary):
            return self._expr_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._expr_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._expr_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._expr_call(expr)
        if isinstance(expr, ast.Index):
            return self._load_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._load_lvalue(expr)
        if isinstance(expr, ast.Cast):
            value = self._expr(expr.operand)
            if isinstance(expr.target_type, CharType) and \
                    not isinstance(expr.operand.ctype, CharType):
                self.emit(f"AND #255, {value.reg}")
            return value
        if isinstance(expr, ast.SizeOf):
            target = (expr.target_type if expr.target_type is not None
                      else expr.operand.ctype)
            value = self.regs.alloc()
            self.emit(f"MOV #{target.size}, {value.reg}")
            return value
        raise self._error(f"cannot generate {type(expr).__name__}",
                          expr.line)

    # -- identifiers & lvalues ----------------------------------------------------------
    def _symbol_operand(self, symbol: Symbol) -> str:
        """Direct operand text for a scalar variable, if one exists."""
        if symbol.kind in (SymbolKind.LOCAL, SymbolKind.PARAM):
            return f"{symbol.frame_offset}(R4)"
        if symbol.kind in (SymbolKind.GLOBAL,):
            return f"&{symbol.label or self.gen.mangle(symbol.name)}"
        if symbol.kind is SymbolKind.SYSVAR:
            return f"&{symbol.label}"
        raise CompileError(f"no direct operand for {symbol.kind}")

    def _expr_ident(self, expr: ast.Ident) -> _Value:
        symbol = expr.symbol
        value = self.regs.alloc()
        if symbol.is_function:
            label = self.gen.function_labels.get(
                symbol.name, self.gen.mangle(symbol.name))
            self.emit(f"MOV #{label}, {value.reg}")
            return value
        if isinstance(symbol.ctype, ArrayType) or \
                isinstance(symbol.ctype, StructType):
            # decay / aggregate: produce the address
            self._emit_symbol_address(symbol, value.reg)
            return value
        suffix = ".B" if isinstance(symbol.ctype, CharType) else ""
        self.emit(f"MOV{suffix} {self._symbol_operand(symbol)}, "
                  f"{value.reg}")
        return value

    def _emit_symbol_address(self, symbol: Symbol, reg: str) -> None:
        if symbol.kind in (SymbolKind.LOCAL, SymbolKind.PARAM):
            self.emit(f"MOV R4, {reg}")
            offset = symbol.frame_offset
            if offset:
                self.emit(f"ADD #{offset & 0xFFFF}, {reg}")
        else:
            label = symbol.label or self.gen.mangle(symbol.name)
            self.emit(f"MOV #{label}, {reg}")

    def _addr(self, expr: ast.Expr) -> Tuple[_Value, bool]:
        """Address of an lvalue.  Returns (address value, needs_check):
        ``needs_check`` is True when the address came from app-controlled
        pointer data rather than a direct frame/global reference."""
        if isinstance(expr, ast.Ident):
            value = self.regs.alloc()
            self._emit_symbol_address(expr.symbol, value.reg)
            return value, False
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value = self._expr(expr.operand)
            return value, True
        if isinstance(expr, ast.Index):
            return self._addr_index(expr)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._expr(expr.base)
                struct = expr.base.ctype.decay().target
                offset = struct.field(expr.name).offset
                if offset:
                    self.emit(f"ADD #{offset}, {base.reg}")
                return base, True
            base, needs_check = self._addr(expr.base)
            struct = expr.base.ctype
            offset = struct.field(expr.name).offset
            if offset:
                self.emit(f"ADD #{offset}, {base.reg}")
            return base, needs_check
        raise self._error(
            f"not an lvalue: {type(expr).__name__}", expr.line)

    def _addr_index(self, expr: ast.Index) -> Tuple[_Value, bool]:
        base_type = expr.base.ctype
        if isinstance(base_type, ArrayType):
            element = base_type.element
            base, _ = self._addr(expr.base)
            index = self._expr(expr.index)
            # Feature-Limited bounds check on the raw index.
            self.checks.array_index_check(self, index.reg,
                                          base_type.length)
            self._scale_by(index, element.size)
            self.emit(f"ADD {index.reg}, {base.reg}")
            self.regs.free(index)
            # The resulting address is app-controlled (dynamic index),
            # so the pointer-style models must check it too.
            return base, True
        element = base_type.decay().target
        base = self._expr(expr.base)
        index = self._expr(expr.index)
        self._scale_by(index, element.size)
        self.emit(f"ADD {index.reg}, {base.reg}")
        self.regs.free(index)
        return base, True

    def _scale_by(self, value: _Value, size: int) -> None:
        if size == 1:
            return
        if size == 2:
            self.emit(f"RLA {value.reg}")
            return
        if size & (size - 1) == 0:
            shift = size.bit_length() - 1
            for _ in range(shift):
                self.emit(f"RLA {value.reg}")
            return
        self._call_helper2("__mulhi", value, size)

    def _load_lvalue(self, expr: ast.Expr) -> _Value:
        address, needs_check = self._addr(expr)
        if isinstance(expr.ctype, (ArrayType, StructType)):
            return address      # decay to address
        if needs_check:
            self.checks.data_pointer_check(self, address.reg,
                                           is_write=False)
        suffix = ".B" if isinstance(expr.ctype, CharType) else ""
        self.emit(f"MOV{suffix} @{address.reg}, {address.reg}")
        return address

    # -- unary ------------------------------------------------------------------------
    def _expr_unary(self, expr: ast.Unary) -> _Value:
        op = expr.op
        if op == "*":
            if isinstance(expr.ctype, FunctionType):
                return self._expr(expr.operand)
            value = self._expr(expr.operand)
            self.checks.data_pointer_check(self, value.reg,
                                           is_write=False)
            suffix = ".B" if isinstance(expr.ctype, CharType) else ""
            self.emit(f"MOV{suffix} @{value.reg}, {value.reg}")
            return value
        if op == "&":
            inner = expr.operand
            if isinstance(inner, ast.Ident) and inner.symbol.is_function:
                return self._expr(inner)
            address, _check = self._addr(inner)
            return address
        if op == "-":
            value = self._expr(expr.operand)
            self.emit(f"INV {value.reg}")
            self.emit(f"INC {value.reg}")
            return value
        if op == "~":
            value = self._expr(expr.operand)
            self.emit(f"INV {value.reg}")
            return value
        if op == "!":
            value = self._expr(expr.operand)
            one = self._new_label("bnot1")
            done = self._new_label("bnotd")
            self.emit(f"TST {value.reg}")
            self.emit(f"JEQ {one}")
            self.emit(f"MOV #0, {value.reg}")
            self.emit(f"JMP {done}")
            self.emit_label(one)
            self.emit(f"MOV #1, {value.reg}")
            self.emit_label(done)
            return value
        if op in ("++", "--"):
            return self._expr_incdec(expr.operand, op, want_old=False,
                                     line=expr.line)
        raise self._error(f"bad unary {op}", expr.line)

    def _expr_incdec(self, target: ast.Expr, op: str, want_old: bool,
                     line: int) -> _Value:
        ctype = target.ctype
        step = ctype.target.size if ctype.is_pointer else 1
        mnemonic = "ADD" if op == "++" else "SUB"
        suffix = ".B" if isinstance(ctype, CharType) else ""

        # Fast path: direct scalar variable.
        if isinstance(target, ast.Ident) and not isinstance(
                target.ctype, (ArrayType, StructType)):
            operand = self._symbol_operand(target.symbol)
            result = self.regs.alloc()
            if want_old:
                self.emit(f"MOV{suffix} {operand}, {result.reg}")
                self.emit(f"{mnemonic}{suffix} #{step}, {operand}")
            else:
                self.emit(f"{mnemonic}{suffix} #{step}, {operand}")
                self.emit(f"MOV{suffix} {operand}, {result.reg}")
            return result

        address, needs_check = self._addr(target)
        if needs_check:
            self.checks.data_pointer_check(self, address.reg,
                                           is_write=True)
        result = self.regs.alloc()
        if want_old:
            self.emit(f"MOV{suffix} @{address.reg}, {result.reg}")
            self.emit(f"{mnemonic}{suffix} #{step}, 0({address.reg})")
        else:
            self.emit(f"{mnemonic}{suffix} #{step}, 0({address.reg})")
            self.emit(f"MOV{suffix} @{address.reg}, {result.reg}")
        # Keep LIFO discipline: result was allocated after address.
        self.emit(f"MOV {result.reg}, {address.reg}")
        self.regs.free(result)
        return address

    # -- binary -----------------------------------------------------------------------
    _SIMPLE_OPS = {"+": "ADD", "-": "SUB", "&": "AND", "|": "BIS",
                   "^": "XOR"}

    def _expr_binary(self, expr: ast.Binary) -> _Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._materialize_condition(expr)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._materialize_condition(expr)

        left_type = expr.left.ctype.decay()
        right_type = expr.right.ctype.decay()

        # Pointer arithmetic.
        if op in ("+", "-") and (left_type.is_pointer
                                 or right_type.is_pointer):
            return self._pointer_arith(expr, left_type, right_type)

        left = self._expr(expr.left)
        if op in self._SIMPLE_OPS:
            const = _const_eval(expr.right)
            if const is not None:
                self.emit(f"{self._SIMPLE_OPS[op]} #{const & 0xFFFF}, "
                          f"{left.reg}")
                return left
            right = self._expr(expr.right)
            self.emit(f"{self._SIMPLE_OPS[op]} {right.reg}, {left.reg}")
            self.regs.free(right)
            return left
        if op == "*":
            const = _const_eval(expr.right)
            if const is not None and const and \
                    const & (const - 1) == 0:
                for _ in range(const.bit_length() - 1):
                    self.emit(f"RLA {left.reg}")
                return left
            right = self._expr(expr.right)
            return self._call_helper("__mulhi", left, right)
        signed = self._comparison_signed(expr)
        if op == "/":
            right = self._expr(expr.right)
            return self._call_helper("__divhi" if signed else "__udivhi",
                                     left, right)
        if op == "%":
            right = self._expr(expr.right)
            return self._call_helper("__remhi" if signed else "__uremhi",
                                     left, right)
        if op in ("<<", ">>"):
            const = _const_eval(expr.right)
            left_signed = (isinstance(expr.left.ctype.decay(), CharType)
                           or (isinstance(expr.left.ctype.decay(),
                                          IntType)
                               and expr.left.ctype.decay().signed))
            if const is not None and 0 <= (const & 15) <= 4:
                count = const & 15
                for _ in range(count):
                    if op == "<<":
                        self.emit(f"RLA {left.reg}")
                    elif left_signed:
                        self.emit(f"RRA {left.reg}")
                    else:
                        self.emit("CLRC")
                        self.emit(f"RRC {left.reg}")
                return left
            right = self._expr(expr.right)
            if op == "<<":
                helper = "__ashlhi"
            else:
                helper = "__ashrhi" if left_signed else "__lshrhi"
            return self._call_helper(helper, left, right)
        raise self._error(f"bad binary {op}", expr.line)

    def _pointer_arith(self, expr: ast.Binary, left_type: CType,
                       right_type: CType) -> _Value:
        op = expr.op
        if left_type.is_pointer and right_type.is_pointer:
            # pointer difference, scaled down
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            self.emit(f"SUB {right.reg}, {left.reg}")
            self.regs.free(right)
            size = left_type.target.size
            if size == 2:
                self.emit(f"RRA {left.reg}")
            elif size != 1:
                return self._call_helper2("__divhi", left, size)
            return left
        if right_type.is_pointer:      # n + p
            pointer_expr, int_expr = expr.right, expr.left
            pointer_type = right_type
        else:
            pointer_expr, int_expr = expr.left, expr.right
            pointer_type = left_type
        pointer = self._expr(pointer_expr)
        index = self._expr(int_expr)
        self._scale_by(index, pointer_type.target.size)
        if op == "+":
            self.emit(f"ADD {index.reg}, {pointer.reg}")
        else:
            self.emit(f"SUB {index.reg}, {pointer.reg}")
        self.regs.free(index)
        return pointer

    def _materialize_condition(self, expr: ast.Expr) -> _Value:
        # Allocate the result *before* branching so any spill push runs
        # on both paths.
        value = self.regs.alloc()
        false_label = self._new_label("cfalse")
        done = self._new_label("cdone")
        self._condition(expr, false_label=false_label)
        self.emit(f"MOV #1, {value.reg}")
        self.emit(f"JMP {done}")
        self.emit_label(false_label)
        self.emit(f"MOV #0, {value.reg}")
        self.emit_label(done)
        return value

    def _expr_conditional(self, expr: ast.Conditional) -> _Value:
        result = self.regs.alloc()
        else_label = self._new_label("terne")
        done = self._new_label("ternd")
        self._condition(expr.cond, false_label=else_label)
        then_value = self._expr(expr.then)
        self.emit(f"MOV {then_value.reg}, {result.reg}")
        self.regs.free(then_value)
        self.emit(f"JMP {done}")
        self.emit_label(else_label)
        else_value = self._expr(expr.otherwise)
        self.emit(f"MOV {else_value.reg}, {result.reg}")
        self.regs.free(else_value)
        self.emit_label(done)
        return result

    # -- assignment --------------------------------------------------------------------
    def _expr_assign(self, expr: ast.Assign) -> _Value:
        target = expr.target
        ctype = target.ctype
        suffix = ".B" if isinstance(ctype, CharType) else ""

        # Fast path: direct scalar variable target.
        direct = (isinstance(target, ast.Ident)
                  and not isinstance(ctype, (ArrayType, StructType)))
        if direct:
            operand = self._symbol_operand(target.symbol)
            value = self._compute_assign_value(expr, load_current=(
                lambda v: self.emit(f"MOV{suffix} {operand}, {v}")))
            self.emit(f"MOV{suffix} {value.reg}, {operand}")
            return value

        if isinstance(ctype, StructType):
            raise self._error("struct assignment is not supported",
                              expr.line)

        value = self._expr(expr.value) if expr.op == "=" else None
        address, needs_check = self._addr(target)
        if needs_check:
            self.checks.data_pointer_check(self, address.reg,
                                           is_write=True)
        if expr.op == "=":
            # value was allocated before address: store, then free
            # address first (LIFO), leaving value as the result.
            self.emit(f"MOV{suffix} {value.reg}, 0({address.reg})")
            self.regs.free(address)
            return value
        # compound: load-current, apply, store
        current = self.regs.alloc()
        self.emit(f"MOV{suffix} @{address.reg}, {current.reg}")
        updated = self._apply_compound(expr, current)
        self.emit(f"MOV{suffix} {updated.reg}, 0({address.reg})")
        self.emit(f"MOV {updated.reg}, {address.reg}")
        self.regs.free(updated)
        return address

    def _compute_assign_value(self, expr: ast.Assign,
                              load_current) -> _Value:
        if expr.op == "=":
            return self._expr(expr.value)
        current = self.regs.alloc()
        load_current(current.reg)
        return self._apply_compound(expr, current)

    def _apply_compound(self, expr: ast.Assign,
                        current: _Value) -> _Value:
        """Apply ``current <op>= value``; returns the updated value
        (same pseudo-stack slot as ``current`` or a replacement)."""
        base_op = expr.op[:-1]
        target_type = expr.target.ctype
        if target_type.is_pointer and base_op in ("+", "-"):
            index = self._expr(expr.value)
            self._scale_by(index, target_type.target.size)
            mnemonic = "ADD" if base_op == "+" else "SUB"
            self.emit(f"{mnemonic} {index.reg}, {current.reg}")
            self.regs.free(index)
            return current
        synthetic = ast.Binary(
            line=expr.line, op=base_op,
            left=_Premade(current, expr.target.ctype),
            right=expr.value)
        synthetic.ctype = expr.target.ctype
        return self._expr_binary_premade(synthetic, current)

    def _expr_binary_premade(self, expr: ast.Binary,
                             left: _Value) -> _Value:
        """Like _expr_binary but the left operand is already in a
        register (used by compound assignment)."""
        op = expr.op
        if op in self._SIMPLE_OPS:
            right = self._expr(expr.right)
            self.emit(f"{self._SIMPLE_OPS[op]} {right.reg}, {left.reg}")
            self.regs.free(right)
            return left
        if op == "*":
            right = self._expr(expr.right)
            return self._call_helper("__mulhi", left, right)
        left_type = expr.left.ctype
        signed = not (isinstance(left_type, IntType)
                      and not left_type.signed)
        if op == "/":
            right = self._expr(expr.right)
            return self._call_helper("__divhi" if signed else "__udivhi",
                                     left, right)
        if op == "%":
            right = self._expr(expr.right)
            return self._call_helper("__remhi" if signed else "__uremhi",
                                     left, right)
        if op == "<<":
            right = self._expr(expr.right)
            return self._call_helper("__ashlhi", left, right)
        if op == ">>":
            right = self._expr(expr.right)
            return self._call_helper("__ashrhi" if signed
                                     else "__lshrhi", left, right)
        raise self._error(f"bad compound op {op}=", expr.line)

    # -- calls ----------------------------------------------------------------------------
    def _call_helper(self, helper: str, left: _Value,
                     right: _Value) -> _Value:
        """left OP right via a runtime helper (clobbers R12-R15 only)."""
        self.emit(f"MOV {left.reg}, R12")
        self.emit(f"MOV {right.reg}, R13")
        self.emit(f"CALL #{helper}")
        self.emit(f"MOV R12, {left.reg}")
        self.regs.free(right)
        return left

    def _call_helper2(self, helper: str, left: _Value,
                      constant: int) -> _Value:
        self.emit(f"MOV {left.reg}, R12")
        self.emit(f"MOV #{constant & 0xFFFF}, R13")
        self.emit(f"CALL #{helper}")
        self.emit(f"MOV R12, {left.reg}")
        return left

    def _expr_call(self, expr: ast.Call) -> _Value:
        # Who are we calling?
        direct_symbol: Optional[Symbol] = None
        if isinstance(expr.func, ast.Ident):
            symbol = expr.func.symbol
            if symbol.kind in (SymbolKind.FUNC, SymbolKind.API):
                direct_symbol = symbol

        stack_args = expr.args[len(_ARG_REGS):]
        if stack_args and any(v.spilled for v in self.regs.stack):
            # Stack-argument pushes would interleave with spill slots.
            raise self._error(
                "expression too complex: >4-argument call nested more "
                "than seven temporaries deep", expr.line)

        target: Optional[_Value] = None
        if direct_symbol is None:
            target = self._expr(expr.func)

        # Stack arguments (5th onward), pushed right-to-left.
        for arg in reversed(stack_args):
            value = self._expr(arg)
            self.emit(f"PUSH {value.reg}")
            self.regs.free(value)

        # Register arguments: evaluate left-to-right into temporaries,
        # then move into R12-R15 (so a later arg's evaluation cannot
        # clobber an earlier arg's register).
        reg_args = expr.args[:len(_ARG_REGS)]
        values = [self._expr(arg) for arg in reg_args]
        for value, arg_reg in zip(values, _ARG_REGS):
            self.emit(f"MOV {value.reg}, {arg_reg}")
        for value in reversed(values):
            self.regs.free(value)

        if direct_symbol is not None:
            if direct_symbol.kind is SymbolKind.API:
                self.emit(f"CALL #{direct_symbol.label}")
            else:
                label = self.gen.function_labels.get(
                    direct_symbol.name,
                    self.gen.mangle(direct_symbol.name))
                self.emit(f"CALL #{label}")
        else:
            self.checks.fn_pointer_check(self, target.reg)
            self.emit(f"CALL {target.reg}")

        if stack_args:
            self.emit(f"ADD #{2 * len(stack_args)}, SP")

        if target is not None:
            self.emit(f"MOV R12, {target.reg}")
            return target
        result = self.regs.alloc()
        self.emit(f"MOV R12, {result.reg}")
        return result


class _Premade(ast.Expr):
    """Wrapper marking an operand already materialized in a register."""

    def __init__(self, value: _Value, ctype: CType):
        super().__init__(line=0, ctype=ctype)
        self.value = value


class _CheckCapture:
    """A tiny emit-capture proxy so prologue/epilogue checks can be
    generated after the body (which determined frame facts)."""

    def __init__(self, emitter: _FunctionEmitter):
        self.emitter = emitter
        self.lines: List[str] = []
        self.function = emitter.function
        self.gen = emitter.gen

    def emit(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def _new_label(self, hint: str = "L") -> str:
        return self.emitter._new_label(hint)


def compile_unit(source: str,
                 profile: LanguageProfile = FULL_C,
                 api: Optional[ApiTable] = None,
                 checks: Optional[CheckPolicy] = None,
                 label_prefix: str = "",
                 text_section: str = ".text",
                 data_section: str = ".data",
                 optimize: bool = False,
                 filename: str = "<minic>") -> CompiledUnit:
    """Compile MiniC source to MSP430 assembly text.

    ``optimize=True`` runs the AST optimizer (constant folding, branch
    pruning — see :mod:`repro.cc.optimize`) before semantic analysis,
    so all later bookkeeping reflects the simplified program."""
    unit = parse(source, filename)
    if optimize:
        from repro.cc.optimize import optimize_unit
        unit = optimize_unit(unit)
    sema = analyze(unit, profile, api, filename)
    generator = CodeGenerator(checks, text_section, data_section,
                              label_prefix)
    return generator.generate(sema)
