"""Symbol table for MiniC."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CompileError
from repro.cc.types import CType, FunctionType


class SymbolKind(enum.Enum):
    GLOBAL = "global"        # module-level variable
    LOCAL = "local"          # function-local variable
    PARAM = "param"
    FUNC = "func"            # function defined/declared in this unit
    API = "api"              # approved OS API function (paper section 3)
    SYSVAR = "sysvar"        # approved read-only system global


@dataclass
class Symbol:
    name: str
    ctype: CType
    kind: SymbolKind
    line: int = 0
    is_static: bool = False
    is_const: bool = False
    # Filled by the code generator:
    frame_offset: Optional[int] = None   # locals/params: offset from FP
    label: Optional[str] = None          # globals/functions: asm label
    service_id: Optional[int] = None     # API functions

    @property
    def is_function(self) -> bool:
        return isinstance(self.ctype, FunctionType)


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.entries: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        if symbol.name in self.entries:
            raise CompileError(
                f"redefinition of {symbol.name!r}", symbol.line)
        self.entries[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


@dataclass
class ApiFunction:
    """One entry in the approved system API.

    ``service_id`` selects the kernel service behind the gate;
    ``cost_cycles`` models the Python-side service work (the gate code
    itself executes for real on the simulated CPU).
    """

    name: str
    ctype: FunctionType
    service_id: int
    cost_cycles: int = 0
    doc: str = ""


@dataclass
class ApiTable:
    """The approved API surface handed to sema and the AFT."""

    functions: Dict[str, ApiFunction] = field(default_factory=dict)
    sysvars: Dict[str, CType] = field(default_factory=dict)

    def add(self, api: ApiFunction) -> None:
        self.functions[api.name] = api

    def add_sysvar(self, name: str, ctype: CType) -> None:
        self.sysvars[name] = ctype

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def gate_symbol(self, name: str) -> str:
        return f"__api_{name}"

    def sysvar_symbol(self, name: str) -> str:
        return f"__os_{name}"
