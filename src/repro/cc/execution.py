"""Bare-metal execution harness for compiled MiniC.

Compiles a translation unit, links it with the runtime into FRAM, and
calls a function on the simulated CPU — no kernel, no isolation.  Used
by the compiler's own tests (including differential testing against the
reference interpreter) and by examples that want a minimal setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cc.codegen import CheckPolicy, CompiledUnit, compile_unit
from repro.cc.runtime import runtime_asm
from repro.cc.sema import FULL_C, LanguageProfile
from repro.cc.symbols import ApiTable
from repro.asm.assembler import assemble
from repro.asm.linker import Image, Linker, LinkScript
from repro.msp430.cpu import Cpu
from repro.msp430.memory import MemoryMap
from repro.ports import DONE_PORT, FAULT_PORT

_START_ASM_TEMPLATE = """
        .text
        .global __start
__start:
        CALL #{entry}
        MOV #1, &0x{done:04X}
.park:
        JMP .park
"""


def default_script() -> LinkScript:
    script = LinkScript()
    script.region("fram", MemoryMap.FRAM_START, MemoryMap.FRAM_END)
    script.place_rule("*", "fram")
    return script


@dataclass
class ExecutionResult:
    value: int
    cycles: int
    instructions: int
    faulted: bool
    cpu: Cpu
    image: Image

    @property
    def signed_value(self) -> int:
        return self.value - 0x10000 if self.value & 0x8000 else self.value


class BareMachine:
    """A linked program plus a CPU, reusable across calls."""

    def __init__(self, unit: CompiledUnit, extra_asm: Sequence[str] = ()):
        objects = [assemble(unit.asm, "unit.s"),
                   assemble(runtime_asm(), "runtime.s")]
        for index, text in enumerate(extra_asm):
            objects.append(assemble(text, f"extra{index}.s"))
        self.unit = unit
        self._objects = objects
        self._start_cache = {}

    def _link_for(self, entry: str) -> Image:
        if entry not in self._start_cache:
            label = self.unit.function_labels.get(entry, entry)
            start = assemble(
                _START_ASM_TEMPLATE.format(entry=label, done=DONE_PORT),
                "start.s")
            # Re-assemble objects fresh is unnecessary; sections carry no
            # addresses until place(), but Linker mutates section
            # addresses, so link each entry with a fresh script.
            image = (Linker(default_script())
                     .place(self._objects + [start])
                     .resolve())
            self._start_cache[entry] = image
        return self._start_cache[entry]

    def run(self, entry: str, args: Sequence[int] = (),
            max_cycles: int = 50_000_000) -> ExecutionResult:
        if len(args) > 4:
            raise ValueError("harness supports at most 4 register args")
        image = self._link_for(entry)
        cpu = Cpu()
        image.load_into(cpu.memory)
        faulted = False

        def on_done(_addr: int, _value: int) -> None:
            cpu.halt()

        def on_fault(_addr: int, _value: int) -> None:
            nonlocal faulted
            faulted = True

        cpu.memory.add_io(DONE_PORT, write=on_done)
        cpu.memory.add_io(FAULT_PORT, write=on_fault)
        cpu.regs.pc = image.symbol("__start")
        cpu.regs.sp = MemoryMap.SRAM_END + 1
        for index, value in enumerate(args):
            cpu.regs.write(12 + index, value & 0xFFFF)
        cpu.run(max_cycles=max_cycles)
        return ExecutionResult(
            value=cpu.regs.read(12), cycles=cpu.cycles,
            instructions=cpu.instructions, faulted=faulted,
            cpu=cpu, image=image)


def run_compiled(source: str, entry: str, args: Sequence[int] = (),
                 profile: LanguageProfile = FULL_C,
                 api: Optional[ApiTable] = None,
                 checks: Optional[CheckPolicy] = None,
                 max_cycles: int = 50_000_000) -> ExecutionResult:
    """Compile ``source`` and execute ``entry(*args)`` on the simulator."""
    unit = compile_unit(source, profile=profile, api=api, checks=checks)
    machine = BareMachine(unit)
    return machine.run(entry, args, max_cycles=max_cycles)
