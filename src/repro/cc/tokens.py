"""Token definitions for MiniC."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TokenType(enum.Enum):
    IDENT = "identifier"
    NUMBER = "number"
    CHAR = "char-literal"
    STRING = "string-literal"
    KEYWORD = "keyword"
    PUNCT = "punctuator"
    EOF = "eof"


KEYWORDS = frozenset({
    "int", "unsigned", "signed", "char", "void", "const", "static",
    "struct", "sizeof",
    "if", "else", "while", "do", "for", "return", "break", "continue",
    "switch", "case", "default",
    "goto", "asm", "__asm__",
})

# Multi-character punctuators, longest first so the lexer can greedily match.
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    col: int
    value: Optional[int] = None    # numeric value for NUMBER / CHAR

    def is_punct(self, text: str) -> bool:
        return self.type is TokenType.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.col})"
