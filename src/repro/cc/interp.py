"""Reference AST interpreter for MiniC.

Exists so the code generator can be differentially tested: the same
program is run through :class:`Interpreter` and through the full
compile → assemble → link → simulate pipeline, and the results must
agree.  Semantics are therefore specified here precisely:

* ``int`` is signed 16-bit, ``unsigned`` is 16-bit, ``char`` is an
  unsigned 8-bit byte that promotes to (signed) ``int``.
* Division/modulo truncate toward zero (C semantics; the compiled
  runtime helpers match).
* Shift counts are taken modulo 16 (both here and in the helpers).
* Pointers are integer addresses into a flat 64 KB byte array; pointer
  arithmetic scales by the target size.

The interpreter performs **no isolation checks** — it is the semantics
oracle for *correct* programs, not a sandbox.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.errors import InterpreterError
from repro.cc import ast
from repro.cc.symbols import Symbol, SymbolKind
from repro.cc.types import (
    ArrayType,
    CharType,
    CType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
)

MASK = 0xFFFF


def _to_signed(value: int) -> int:
    value &= MASK
    return value - 0x10000 if value & 0x8000 else value


def _truncdiv(a: int, b: int) -> int:
    """C division: truncation toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _truncmod(a: int, b: int) -> int:
    return a - _truncdiv(a, b) * b


class _ReturnSignal(Exception):
    def __init__(self, value: int = 0):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class Frame:
    def __init__(self) -> None:
        self.addresses: Dict[int, int] = {}   # id(symbol) -> address


class Interpreter:
    """Executes an analyzed translation unit."""

    GLOBAL_BASE = 0x8000
    STACK_TOP = 0xF000
    FUNC_TABLE_BASE = 0x0100     # fake code addresses for fn pointers

    def __init__(self, sema_result,
                 host_api: Optional[Dict[str, Callable]] = None,
                 max_steps: int = 2_000_000):
        self.sema = sema_result
        self.unit = sema_result.unit
        self.memory = bytearray(0x10000)
        self.host_api = host_api if host_api is not None else {}
        self.max_steps = max_steps
        self.steps = 0

        self.functions: Dict[str, ast.FunctionDef] = {
            f.name: f for f in self.unit.functions if f.body is not None
        }
        self.func_addresses: Dict[str, int] = {}
        self.addr_to_func: Dict[int, str] = {}
        for index, name in enumerate(sorted(self.functions)):
            address = self.FUNC_TABLE_BASE + 2 * index
            self.func_addresses[name] = address
            self.addr_to_func[address] = name

        self.global_addresses: Dict[int, int] = {}
        self.string_addresses: Dict[str, int] = {}
        self._alloc_cursor = self.GLOBAL_BASE
        self._stack_cursor = self.STACK_TOP
        self.frames: List[Frame] = []
        self._init_globals()

    # -- memory ---------------------------------------------------------------
    def _allocate(self, size: int, align: int = 2) -> int:
        if align > 1 and self._alloc_cursor % align:
            self._alloc_cursor += align - self._alloc_cursor % align
        address = self._alloc_cursor
        self._alloc_cursor += max(size, 1)
        if self._alloc_cursor >= self.STACK_TOP - 0x1000:
            raise InterpreterError("interpreter data space exhausted")
        return address

    def _alloc_stack(self, size: int, align: int = 2) -> int:
        self._stack_cursor -= max(size, 1)
        if align > 1 and self._stack_cursor % align:
            self._stack_cursor -= self._stack_cursor % align
        if self._stack_cursor <= self.GLOBAL_BASE:
            raise InterpreterError("interpreter stack overflow")
        return self._stack_cursor

    def load(self, address: int, ctype: CType) -> int:
        address &= MASK
        if isinstance(ctype, CharType):
            return self.memory[address]
        value = self.memory[address] | (self.memory[(address + 1) & MASK]
                                        << 8)
        return value

    def store(self, address: int, value: int, ctype: CType) -> None:
        address &= MASK
        if isinstance(ctype, CharType):
            self.memory[address] = value & 0xFF
            return
        self.memory[address] = value & 0xFF
        self.memory[(address + 1) & MASK] = (value >> 8) & 0xFF

    def _intern_string(self, text: str) -> int:
        if text not in self.string_addresses:
            blob = text.encode("latin1") + b"\0"
            address = self._allocate(len(blob), 1)
            self.memory[address:address + len(blob)] = blob
            self.string_addresses[text] = address
        return self.string_addresses[text]

    # -- globals -----------------------------------------------------------------
    def _init_globals(self) -> None:
        from repro.cc.parser import _const_eval
        for decl in self.unit.globals:
            address = self._allocate(decl.ctype.size, decl.ctype.align)
            self.global_addresses[id(decl.symbol)] = address
            if decl.init is None:
                continue
            if isinstance(decl.init, list):
                element = decl.ctype.element \
                    if isinstance(decl.ctype, ArrayType) else None
                cursor = address
                for item in decl.init:
                    value = _const_eval(item)
                    if value is None:
                        raise InterpreterError("non-constant global init")
                    self.store(cursor, value, element)
                    cursor += element.size
            elif isinstance(decl.init, ast.StringLiteral):
                blob = decl.init.value.encode("latin1") + b"\0"
                if isinstance(decl.ctype, ArrayType):
                    self.memory[address:address + len(blob)] = blob
                else:
                    self.store(address, self._intern_string(decl.init.value),
                               decl.ctype)
            else:
                value = _const_eval(decl.init)
                if value is None:
                    raise InterpreterError("non-constant global init")
                self.store(address, value, decl.ctype)

    # -- symbol addressing ----------------------------------------------------------
    def _symbol_address(self, symbol: Symbol) -> int:
        if symbol.kind in (SymbolKind.LOCAL, SymbolKind.PARAM):
            for frame in reversed(self.frames):
                if id(symbol) in frame.addresses:
                    return frame.addresses[id(symbol)]
            raise InterpreterError(f"symbol {symbol.name} not in frame")
        if symbol.kind in (SymbolKind.GLOBAL, SymbolKind.SYSVAR):
            if id(symbol) not in self.global_addresses:
                # sysvars get lazily allocated, zero-initialized
                self.global_addresses[id(symbol)] = \
                    self._allocate(symbol.ctype.size, symbol.ctype.align)
            return self.global_addresses[id(symbol)]
        if symbol.kind in (SymbolKind.FUNC, SymbolKind.API):
            if symbol.name in self.func_addresses:
                return self.func_addresses[symbol.name]
            raise InterpreterError(
                f"cannot take the address of API {symbol.name}")
        raise InterpreterError(f"cannot address {symbol.kind}")

    # -- running ------------------------------------------------------------------------
    def call(self, name: str, args: Optional[List[int]] = None) -> int:
        """Call a defined function by name with integer arguments."""
        function = self.functions.get(name)
        if function is None:
            raise InterpreterError(f"no function {name!r}")
        return self._invoke(function, list(args or []))

    def _invoke(self, function: ast.FunctionDef, args: List[int]) -> int:
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{function.name} expects {len(function.params)} args")
        frame = Frame()
        saved_stack = self._stack_cursor
        self.frames.append(frame)
        try:
            for param, value in zip(function.params, args):
                address = self._alloc_stack(param.ctype.size,
                                            param.ctype.align)
                frame.addresses[id(param.symbol)] = address
                self.store(address, value, param.ctype)
            try:
                self._exec_block(function.body)
            except _ReturnSignal as signal:
                return signal.value & MASK
            return 0
        finally:
            self.frames.pop()
            self._stack_cursor = saved_stack

    # -- statements -------------------------------------------------------------------------
    def _tick(self, line: int) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError(
                f"step budget exhausted (possible infinite loop, "
                f"line {line})")

    def _exec_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._exec(stmt)

    def _exec(self, stmt: ast.Stmt) -> None:
        self._tick(stmt.line)
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            frame = self.frames[-1]
            address = self._alloc_stack(stmt.ctype.size, stmt.ctype.align)
            frame.addresses[id(stmt.symbol)] = address
            # zero-fill so repeated runs are deterministic
            self.memory[address:address + max(stmt.ctype.size, 1)] = \
                bytes(max(stmt.ctype.size, 1))
            if stmt.init is None:
                return
            if isinstance(stmt.init, list):
                element = stmt.ctype.element \
                    if isinstance(stmt.ctype, ArrayType) else None
                cursor = address
                for item in stmt.init:
                    self.store(cursor, self._eval(item), element)
                    cursor += element.size
            elif isinstance(stmt.init, ast.StringLiteral) and \
                    isinstance(stmt.ctype, ArrayType):
                blob = stmt.init.value.encode("latin1") + b"\0"
                self.memory[address:address + len(blob)] = blob
            else:
                self.store(address, self._eval(stmt.init), stmt.ctype)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._eval(stmt.expr)
        elif isinstance(stmt, ast.If):
            if self._truthy(stmt.cond):
                self._exec(stmt.then)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            while self._truthy(stmt.cond):
                self._tick(stmt.line)
                try:
                    self._exec(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                self._tick(stmt.line)
                try:
                    self._exec(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._truthy(stmt.cond):
                    break
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._exec(stmt.init)
            while stmt.cond is None or self._truthy(stmt.cond):
                self._tick(stmt.line)
                try:
                    self._exec(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value) if stmt.value is not None else 0
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt)
        elif isinstance(stmt, ast.LabelStmt):
            self._exec(stmt.statement)
        else:
            raise InterpreterError(
                f"cannot interpret {type(stmt).__name__} "
                f"(line {stmt.line})")

    def _exec_switch(self, stmt: ast.Switch) -> None:
        value = _to_signed(self._eval(stmt.cond))
        start: Optional[int] = None
        default_index: Optional[int] = None
        for index, (case_value, _body) in enumerate(stmt.cases):
            if case_value is None:
                default_index = index
            elif _to_signed(case_value) == value:
                start = index
                break
        if start is None:
            start = default_index
        if start is None:
            return
        try:
            for _value, body in stmt.cases[start:]:
                for child in body:
                    self._exec(child)
        except _BreakSignal:
            pass

    # -- expressions --------------------------------------------------------------------------
    def _truthy(self, expr: ast.Expr) -> bool:
        return (self._eval(expr) & MASK) != 0

    def _lvalue(self, expr: ast.Expr) -> int:
        """Evaluate to an address."""
        if isinstance(expr, ast.Ident):
            return self._symbol_address(expr.symbol)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._eval(expr.operand) & MASK
        if isinstance(expr, ast.Index):
            base_type = expr.base.ctype
            if isinstance(base_type, ArrayType):
                base = self._lvalue(expr.base)
                element = base_type.element
            else:
                base = self._eval(expr.base)
                element = base_type.decay().target
            index = _to_signed(self._eval(expr.index))
            return (base + index * element.size) & MASK
        if isinstance(expr, ast.Member):
            struct = (expr.base.ctype.decay().target if expr.arrow
                      else expr.base.ctype)
            offset = struct.field(expr.name).offset
            base = (self._eval(expr.base) if expr.arrow
                    else self._lvalue(expr.base))
            return (base + offset) & MASK
        raise InterpreterError(
            f"not an lvalue: {type(expr).__name__} (line {expr.line})")

    def _eval(self, expr: ast.Expr) -> int:
        self._tick(expr.line)
        result = self._eval_inner(expr)
        return result & MASK

    def _eval_inner(self, expr: ast.Expr) -> int:
        if isinstance(expr, _Materialized):
            return expr.value
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
            return expr.value
        if isinstance(expr, ast.StringLiteral):
            return self._intern_string(expr.value)
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            if symbol.is_function:
                return self._symbol_address(symbol)
            if isinstance(symbol.ctype, ArrayType):
                return self._symbol_address(symbol)   # decay
            return self.load(self._symbol_address(symbol), symbol.ctype)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._eval_postfix(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr)
        if isinstance(expr, ast.Conditional):
            if self._truthy(expr.cond):
                return self._eval(expr.then)
            return self._eval(expr.otherwise)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Index):
            address = self._lvalue(expr)
            if isinstance(expr.ctype, ArrayType):
                return address            # multi-level decay
            return self.load(address, expr.ctype)
        if isinstance(expr, ast.Member):
            address = self._lvalue(expr)
            if isinstance(expr.ctype, ArrayType):
                return address
            return self.load(address, expr.ctype)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand)
            if isinstance(expr.target_type, CharType):
                return value & 0xFF
            return value
        if isinstance(expr, ast.SizeOf):
            target = (expr.target_type if expr.target_type is not None
                      else expr.operand.ctype)
            return target.size
        raise InterpreterError(
            f"cannot evaluate {type(expr).__name__} (line {expr.line})")

    def _eval_unary(self, expr: ast.Unary) -> int:
        op = expr.op
        if op == "*":
            address = self._eval(expr.operand)
            if isinstance(expr.ctype, (ArrayType, FunctionType)):
                return address
            return self.load(address, expr.ctype)
        if op == "&":
            inner = expr.operand
            if isinstance(inner, ast.Ident) and inner.symbol.is_function:
                return self._symbol_address(inner.symbol)
            return self._lvalue(inner)
        if op == "-":
            return -self._eval(expr.operand)
        if op == "~":
            return ~self._eval(expr.operand)
        if op == "!":
            return 0 if self._truthy(expr.operand) else 1
        if op in ("++", "--"):
            address = self._lvalue(expr.operand)
            ctype = expr.operand.ctype
            step = (ctype.target.size if ctype.is_pointer else 1)
            value = self.load(address, ctype)
            value = value + step if op == "++" else value - step
            self.store(address, value, ctype)
            return value
        raise InterpreterError(f"bad unary {op}")

    def _eval_postfix(self, expr: ast.Postfix) -> int:
        address = self._lvalue(expr.operand)
        ctype = expr.operand.ctype
        step = (ctype.target.size if ctype.is_pointer else 1)
        value = self.load(address, ctype)
        updated = value + step if expr.op == "++" else value - step
        self.store(address, updated, ctype)
        return value

    def _eval_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        if op == "&&":
            return 1 if (self._truthy(expr.left)
                         and self._truthy(expr.right)) else 0
        if op == "||":
            return 1 if (self._truthy(expr.left)
                         or self._truthy(expr.right)) else 0

        left_type = expr.left.ctype.decay()
        right_type = expr.right.ctype.decay()
        left = self._eval(expr.left)
        right = self._eval(expr.right)

        # Pointer arithmetic.
        if op in ("+", "-") and (left_type.is_pointer
                                 or right_type.is_pointer):
            if left_type.is_pointer and right_type.is_pointer:
                return _truncdiv(_to_signed(left - right),
                                 left_type.target.size)
            if right_type.is_pointer:
                left, right = right, left
                left_type = right_type
            scale = left_type.target.size
            delta = _to_signed(right) * scale
            return left + delta if op == "+" else left - delta

        signed = self._is_signed_op(left_type, right_type)
        a = _to_signed(left) if signed else left & MASK
        b = _to_signed(right) if signed else right & MASK

        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise InterpreterError(f"division by zero "
                                       f"(line {expr.line})")
            return _truncdiv(a, b)
        if op == "%":
            if b == 0:
                raise InterpreterError(f"modulo by zero "
                                       f"(line {expr.line})")
            return _truncmod(a, b)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return (left << (right & 15)) & MASK
        if op == ">>":
            count = right & 15
            if signed:
                return _to_signed(left) >> count
            return (left & MASK) >> count
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left_type.is_pointer or right_type.is_pointer:
                a, b = left & MASK, right & MASK
            comparison = {
                "==": a == b, "!=": a != b,
                "<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b,
            }[op]
            return 1 if comparison else 0
        raise InterpreterError(f"bad binary {op}")

    @staticmethod
    def _is_signed_op(left: CType, right: CType) -> bool:
        def signedness(t: CType) -> bool:
            if isinstance(t, CharType):
                return True          # promotes to signed int
            if isinstance(t, IntType):
                return t.signed
            return False             # pointers compare unsigned
        return signedness(left) and signedness(right)

    def _eval_assign(self, expr: ast.Assign) -> int:
        address = self._lvalue(expr.target)
        target_type = expr.target.ctype
        value = self._eval(expr.value)
        if expr.op == "=":
            self.store(address, value, target_type)
            return self.load(address, target_type)
        base_op = expr.op[:-1]
        current = self.load(address, target_type)
        if target_type.is_pointer and base_op in ("+", "-"):
            scale = target_type.target.size
            delta = _to_signed(value) * scale
            updated = current + delta if base_op == "+" else \
                current - delta
        else:
            synthetic = ast.Binary(
                line=expr.line, op=base_op,
                left=_Materialized(current, target_type),
                right=_Materialized(value, expr.value.ctype))
            updated = self._eval_binary(synthetic)
        self.store(address, updated, target_type)
        return self.load(address, target_type)

    def _eval_call(self, expr: ast.Call) -> int:
        args = [self._eval(a) for a in expr.args]
        # Direct call?
        if isinstance(expr.func, ast.Ident):
            symbol = expr.func.symbol
            if symbol.kind is SymbolKind.API:
                handler = self.host_api.get(symbol.name)
                if handler is None:
                    raise InterpreterError(
                        f"no host handler for API {symbol.name!r}")
                return int(handler(*args)) & MASK
            if symbol.kind is SymbolKind.FUNC:
                function = self.functions.get(symbol.name)
                if function is None:
                    raise InterpreterError(
                        f"call to undefined function {symbol.name!r}")
                return self._invoke(function, args)
        # Indirect call through a function pointer value.
        address = self._eval(expr.func)
        name = self.addr_to_func.get(address)
        if name is None:
            raise InterpreterError(
                f"bad function pointer 0x{address:04X} "
                f"(line {expr.line})")
        return self._invoke(self.functions[name], args)


class _Materialized(ast.Expr):
    """A pre-computed value wrapped as an expression for compound
    assignment re-evaluation."""

    def __init__(self, value: int, ctype: CType):
        super().__init__(line=0, ctype=ctype)
        self.value = value
