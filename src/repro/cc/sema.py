"""Semantic analysis for MiniC.

Two responsibilities, both feeding the AFT:

1. **Type checking & name resolution** — annotate every expression with
   its C type, resolve identifiers to symbols, verify calls/members/
   indexing, and mark lvalues.

2. **Language restriction enforcement** — the paper compares language
   profiles: *AmuletC* (no pointers, no recursion, no goto, no inline
   assembly) against *full C* (everything but goto/asm).  The profile
   drives which constructs are rejected.  Recursion is detected later by
   the AFT's call-graph phase (it needs the whole-unit graph), so the
   profile only records whether it is permitted.

The analysis also enumerates what AFT phase 1 needs: every memory
access (array index, pointer dereference), every call edge, and every
API call, "on an app by app basis" (paper section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CompileError, RestrictionError
from repro.cc import ast
from repro.cc.symbols import (
    ApiTable,
    Scope,
    Symbol,
    SymbolKind,
)
from repro.cc.types import (
    ArrayType,
    CHAR,
    CType,
    FunctionType,
    INT,
    PointerType,
    StructType,
    UINT,
    VOID,
    assignable,
    common_type,
)


@dataclass(frozen=True)
class LanguageProfile:
    """Which language features are admitted before instrumentation."""

    name: str
    allow_pointers: bool
    allow_recursion: bool
    allow_goto: bool = False
    allow_asm: bool = False


#: The original Amulet language: no pointers, no recursion (paper §1).
AMULET_C = LanguageProfile("AmuletC", allow_pointers=False,
                           allow_recursion=False)

#: The paper's contribution targets: full C with pointers and recursion.
FULL_C = LanguageProfile("C", allow_pointers=True, allow_recursion=True)


@dataclass
class SemaResult:
    unit: ast.TranslationUnit
    profile: LanguageProfile
    globals_scope: Scope
    # AFT phase-1 facts:
    array_accesses: List[ast.Index] = field(default_factory=list)
    pointer_derefs: List[ast.Expr] = field(default_factory=list)
    fn_pointer_calls: List[ast.Call] = field(default_factory=list)
    api_calls: List[Tuple[str, ast.Call]] = field(default_factory=list)
    call_edges: List[Tuple[str, str]] = field(default_factory=list)
    functions: Dict[str, Symbol] = field(default_factory=dict)

    def callees_of(self, name: str) -> Set[str]:
        return {callee for caller, callee in self.call_edges
                if caller == name}


class _Analyzer:
    def __init__(self, unit: ast.TranslationUnit,
                 profile: LanguageProfile,
                 api: Optional[ApiTable] = None,
                 filename: str = "<minic>"):
        self.unit = unit
        self.profile = profile
        self.api = api if api is not None else ApiTable()
        self.filename = filename
        self.globals = Scope()
        self.result = SemaResult(unit, profile, self.globals)
        self.current_function: Optional[str] = None
        self.current_return: CType = VOID
        self.loop_depth = 0

    # -- helpers ------------------------------------------------------------
    def _error(self, message: str, line: int) -> CompileError:
        return CompileError(message, line, 0, self.filename)

    def _restricted(self, message: str, line: int) -> RestrictionError:
        return RestrictionError(
            f"{message} (not allowed in {self.profile.name})",
            line, 0, self.filename)

    def _check_type_allowed(self, ctype: CType, line: int) -> None:
        if self.profile.allow_pointers:
            return
        probe = ctype
        while isinstance(probe, ArrayType):
            probe = probe.element
        if isinstance(probe, PointerType):
            raise self._restricted("pointer types", line)

    # -- entry point -----------------------------------------------------------
    def run(self) -> SemaResult:
        # API functions and sysvars enter the global scope first, so an
        # app cannot shadow or redefine them accidentally.
        for api in self.api.functions.values():
            self.globals.define(Symbol(
                api.name, api.ctype, SymbolKind.API,
                label=self.api.gate_symbol(api.name),
                service_id=api.service_id))
        for name, ctype in self.api.sysvars.items():
            self.globals.define(Symbol(
                name, ctype, SymbolKind.SYSVAR, is_const=True,
                label=self.api.sysvar_symbol(name)))

        # Predeclare all functions (C programs call forward).
        for function in self.unit.functions:
            ftype = FunctionType(function.ret,
                                 tuple(p.ctype for p in function.params))
            existing = self.globals.entries.get(function.name)
            if existing is not None:
                if existing.kind is not SymbolKind.FUNC:
                    raise self._error(
                        f"{function.name!r} conflicts with an API or "
                        f"system symbol", function.line)
                function.symbol = existing
                continue
            symbol = self.globals.define(Symbol(
                function.name, ftype, SymbolKind.FUNC, function.line,
                is_static=function.is_static, label=function.name))
            function.symbol = symbol
            self.result.functions[function.name] = symbol

        for decl in self.unit.globals:
            self._check_type_allowed(decl.ctype, decl.line)
            # label stays None until the code generator mangles it
            symbol = self.globals.define(Symbol(
                decl.name, decl.ctype, SymbolKind.GLOBAL, decl.line,
                is_static=decl.is_static, is_const=decl.is_const))
            decl.symbol = symbol
            self._check_global_init(decl)

        for function in self.unit.functions:
            if function.body is not None:
                self._analyze_function(function)
        return self.result

    def _check_global_init(self, decl: ast.VarDecl) -> None:
        if decl.init is None:
            return
        items = decl.init if isinstance(decl.init, list) else [decl.init]
        for item in items:
            if isinstance(item, ast.StringLiteral):
                continue
            from repro.cc.parser import _const_eval
            if _const_eval(item) is None:
                raise self._error(
                    f"global {decl.name!r} initializer must be constant",
                    decl.line)
        if isinstance(decl.init, list):
            if not isinstance(decl.ctype, (ArrayType, StructType)):
                raise self._error(
                    f"brace initializer on non-aggregate {decl.name!r}",
                    decl.line)
            if isinstance(decl.ctype, ArrayType) \
                    and len(decl.init) > decl.ctype.length:
                raise self._error(
                    f"too many initializers for {decl.name!r}", decl.line)

    # -- functions ---------------------------------------------------------------
    def _analyze_function(self, function: ast.FunctionDef) -> None:
        self.current_function = function.name
        self.current_return = function.ret
        scope = Scope(self.globals)
        for param in function.params:
            self._check_type_allowed(param.ctype, param.line)
            symbol = Symbol(param.name, param.ctype, SymbolKind.PARAM,
                            param.line)
            scope.define(symbol)
            param.symbol = symbol
        self._stmt(function.body, scope)
        self.current_function = None

    # -- statements ------------------------------------------------------------------
    def _stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = Scope(scope)
            for child in stmt.statements:
                self._stmt(child, inner)
        elif isinstance(stmt, ast.VarDecl):
            self._check_type_allowed(stmt.ctype, stmt.line)
            if stmt.ctype.is_void:
                raise self._error(f"variable {stmt.name!r} has void type",
                                  stmt.line)
            if stmt.is_static:
                raise self._error(
                    "static locals are not supported; use a file-scope "
                    "variable", stmt.line)
            symbol = Symbol(stmt.name, stmt.ctype, SymbolKind.LOCAL,
                            stmt.line, is_const=stmt.is_const)
            scope.define(symbol)
            stmt.symbol = symbol
            if stmt.init is not None:
                items = (stmt.init if isinstance(stmt.init, list)
                         else [stmt.init])
                for item in items:
                    self._expr(item, scope)
                if not isinstance(stmt.init, list) and \
                        not isinstance(stmt.init, ast.StringLiteral):
                    if not assignable(stmt.ctype, stmt.init.ctype):
                        raise self._error(
                            f"cannot initialize {stmt.ctype} with "
                            f"{stmt.init.ctype}", stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._scalar_expr(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._scalar_expr(stmt.cond, scope)
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._scalar_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._scalar_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._expr(stmt.step, inner)
            self.loop_depth += 1
            self._stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, scope)
                if self.current_return.is_void:
                    raise self._error("return with a value in void "
                                      "function", stmt.line)
                if not assignable(self.current_return, stmt.value.ctype):
                    raise self._error(
                        f"cannot return {stmt.value.ctype} as "
                        f"{self.current_return}", stmt.line)
            elif not self.current_return.is_void:
                raise self._error("return without a value", stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0 and isinstance(stmt, ast.Continue):
                raise self._error("continue outside a loop", stmt.line)
        elif isinstance(stmt, ast.Goto):
            if not self.profile.allow_goto:
                raise self._restricted("goto statements", stmt.line)
        elif isinstance(stmt, ast.LabelStmt):
            self._stmt(stmt.statement, scope)
        elif isinstance(stmt, ast.InlineAsm):
            if not self.profile.allow_asm:
                raise self._restricted("inline assembly", stmt.line)
        elif isinstance(stmt, ast.Switch):
            self._scalar_expr(stmt.cond, scope)
            self.loop_depth += 1    # break works inside switch
            for _value, body in stmt.cases:
                for child in body:
                    self._stmt(child, scope)
            self.loop_depth -= 1
        else:
            raise self._error(f"unhandled statement {type(stmt).__name__}",
                              stmt.line)

    # -- expressions --------------------------------------------------------------------
    def _scalar_expr(self, expr: ast.Expr, scope: Scope) -> None:
        self._expr(expr, scope)
        if not expr.ctype.decay().is_scalar:
            raise self._error(
                f"condition has non-scalar type {expr.ctype}", expr.line)

    def _expr(self, expr: ast.Expr, scope: Scope) -> CType:
        method = getattr(self, f"_expr_{type(expr).__name__.lower()}",
                         None)
        if method is None:
            raise self._error(f"unhandled expression "
                              f"{type(expr).__name__}", expr.line)
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_intliteral(self, expr: ast.IntLiteral, scope: Scope) -> CType:
        return INT if expr.value <= 0x7FFF else UINT

    def _expr_charliteral(self, expr: ast.CharLiteral,
                          scope: Scope) -> CType:
        return CHAR

    def _expr_stringliteral(self, expr: ast.StringLiteral,
                            scope: Scope) -> CType:
        if not self.profile.allow_pointers:
            raise self._restricted("string literals (pointers)", expr.line)
        return PointerType(CHAR)

    def _expr_ident(self, expr: ast.Ident, scope: Scope) -> CType:
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise self._error(f"use of undeclared identifier "
                              f"{expr.name!r}", expr.line)
        expr.symbol = symbol
        expr.is_lvalue = not symbol.is_function
        return symbol.ctype

    def _expr_unary(self, expr: ast.Unary, scope: Scope) -> CType:
        operand_type = self._expr(expr.operand, scope)
        if expr.op == "*":
            if not self.profile.allow_pointers:
                raise self._restricted("pointer dereference", expr.line)
            decayed = operand_type.decay()
            if not decayed.is_pointer:
                raise self._error(f"cannot dereference {operand_type}",
                                  expr.line)
            if isinstance(decayed.target, (FunctionType,)):
                expr.is_lvalue = False
                return decayed.target
            expr.is_lvalue = True
            self.result.pointer_derefs.append(expr)
            return decayed.target
        if expr.op == "&":
            if not self.profile.allow_pointers:
                raise self._restricted("address-of", expr.line)
            if not getattr(expr.operand, "is_lvalue", False) and \
                    not isinstance(expr.operand.ctype, FunctionType):
                raise self._error("address-of needs an lvalue", expr.line)
            return PointerType(operand_type)
        if expr.op in ("++", "--"):
            if not getattr(expr.operand, "is_lvalue", False):
                raise self._error(f"{expr.op} needs an lvalue", expr.line)
            return operand_type.decay()
        if expr.op == "!":
            if not operand_type.decay().is_scalar:
                raise self._error(f"cannot negate {operand_type}",
                                  expr.line)
            return INT
        # - and ~
        if not operand_type.is_integer:
            raise self._error(f"cannot apply {expr.op} to {operand_type}",
                              expr.line)
        return common_type(operand_type, INT)

    def _expr_postfix(self, expr: ast.Postfix, scope: Scope) -> CType:
        operand_type = self._expr(expr.operand, scope)
        if not getattr(expr.operand, "is_lvalue", False):
            raise self._error(f"{expr.op} needs an lvalue", expr.line)
        return operand_type.decay()

    def _expr_binary(self, expr: ast.Binary, scope: Scope) -> CType:
        left = self._expr(expr.left, scope).decay()
        right = self._expr(expr.right, scope).decay()
        op = expr.op
        if op in ("&&", "||"):
            if not (left.is_scalar and right.is_scalar):
                raise self._error(f"bad operands for {op}", expr.line)
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left.is_pointer or right.is_pointer:
                return INT
            common_type(left, right)   # validates integer-ness
            return INT
        if op in ("+", "-"):
            if left.is_pointer and right.is_integer:
                return left
            if op == "+" and left.is_integer and right.is_pointer:
                return right
            if op == "-" and left.is_pointer and right.is_pointer:
                return INT
            return common_type(left, right)
        if not (left.is_integer and right.is_integer):
            raise self._error(
                f"bad operands for {op}: {left}, {right}", expr.line)
        if op in ("<<", ">>"):
            return common_type(left, INT)
        return common_type(left, right)

    def _expr_assign(self, expr: ast.Assign, scope: Scope) -> CType:
        target_type = self._expr(expr.target, scope)
        self._expr(expr.value, scope)
        if not getattr(expr.target, "is_lvalue", False):
            raise self._error("assignment target is not an lvalue",
                              expr.line)
        if isinstance(target_type, ArrayType):
            raise self._error("cannot assign to an array", expr.line)
        if isinstance(target_type, StructType):
            raise self._error("struct assignment is not supported; "
                              "assign fields individually", expr.line)
        symbol = getattr(expr.target, "symbol", None)
        if symbol is not None and symbol.kind is SymbolKind.SYSVAR:
            raise self._error(
                f"system variable {symbol.name!r} is read-only",
                expr.line)
        if expr.op == "=":
            if not assignable(target_type, expr.value.ctype):
                raise self._error(
                    f"cannot assign {expr.value.ctype} to {target_type}",
                    expr.line)
        else:
            base_op = expr.op[:-1]
            if base_op in ("+", "-") and target_type.is_pointer:
                if not expr.value.ctype.decay().is_integer:
                    raise self._error("pointer += needs an integer",
                                      expr.line)
            elif not (target_type.is_integer
                      and expr.value.ctype.decay().is_integer):
                raise self._error(f"bad operands for {expr.op}", expr.line)
        return target_type

    def _expr_conditional(self, expr: ast.Conditional,
                          scope: Scope) -> CType:
        self._scalar_expr(expr.cond, scope)
        then_type = self._expr(expr.then, scope).decay()
        else_type = self._expr(expr.otherwise, scope).decay()
        if then_type.is_pointer:
            return then_type
        if else_type.is_pointer:
            return else_type
        return common_type(then_type, else_type)

    def _expr_call(self, expr: ast.Call, scope: Scope) -> CType:
        func_type = self._expr(expr.func, scope)
        decayed = func_type.decay()
        if isinstance(decayed, PointerType) and \
                isinstance(decayed.target, FunctionType):
            ftype = decayed.target
            is_indirect = True
        elif isinstance(func_type, FunctionType):
            ftype = func_type
            is_indirect = not isinstance(expr.func, ast.Ident)
        else:
            raise self._error(f"cannot call {func_type}", expr.line)

        if is_indirect and not self.profile.allow_pointers:
            raise self._restricted("function pointers", expr.line)

        if not ftype.variadic and len(expr.args) != len(ftype.params):
            raise self._error(
                f"call expects {len(ftype.params)} arguments, got "
                f"{len(expr.args)}", expr.line)
        for arg, param_type in zip(expr.args, ftype.params):
            self._expr(arg, scope)
            if not assignable(param_type, arg.ctype):
                raise self._error(
                    f"argument type {arg.ctype} incompatible with "
                    f"{param_type}", arg.line)
        for arg in expr.args[len(ftype.params):]:
            self._expr(arg, scope)

        # Record AFT facts.
        if is_indirect:
            self.result.fn_pointer_calls.append(expr)
        elif isinstance(expr.func, ast.Ident):
            callee = expr.func.symbol
            if callee.kind is SymbolKind.API:
                self.result.api_calls.append((callee.name, expr))
            elif self.current_function is not None:
                self.result.call_edges.append(
                    (self.current_function, callee.name))
        return ftype.ret

    def _expr_index(self, expr: ast.Index, scope: Scope) -> CType:
        base_type = self._expr(expr.base, scope)
        index_type = self._expr(expr.index, scope)
        if not index_type.decay().is_integer:
            raise self._error(f"array index has type {index_type}",
                              expr.line)
        decayed = base_type.decay()
        if not decayed.is_pointer:
            raise self._error(f"cannot index {base_type}", expr.line)
        expr.is_lvalue = True
        if isinstance(base_type, ArrayType):
            self.result.array_accesses.append(expr)
        else:
            if not self.profile.allow_pointers:
                raise self._restricted("pointer indexing", expr.line)
            self.result.pointer_derefs.append(expr)
        return decayed.target

    def _expr_member(self, expr: ast.Member, scope: Scope) -> CType:
        base_type = self._expr(expr.base, scope)
        if expr.arrow:
            if not self.profile.allow_pointers:
                raise self._restricted("-> access", expr.line)
            decayed = base_type.decay()
            if not (decayed.is_pointer
                    and isinstance(decayed.target, StructType)):
                raise self._error(f"-> on non-struct-pointer {base_type}",
                                  expr.line)
            struct = decayed.target
            self.result.pointer_derefs.append(expr)
        else:
            if not isinstance(base_type, StructType):
                raise self._error(f". on non-struct {base_type}",
                                  expr.line)
            struct = base_type
        field_info = struct.field(expr.name, expr.line)
        expr.is_lvalue = True
        return field_info.ctype

    def _expr_cast(self, expr: ast.Cast, scope: Scope) -> CType:
        self._expr(expr.operand, scope)
        self._check_type_allowed(expr.target_type, expr.line)
        return expr.target_type

    def _expr_sizeof(self, expr: ast.SizeOf, scope: Scope) -> CType:
        if expr.operand is not None:
            self._expr(expr.operand, scope)
        return UINT


def analyze(unit: ast.TranslationUnit,
            profile: LanguageProfile = FULL_C,
            api: Optional[ApiTable] = None,
            filename: str = "<minic>") -> SemaResult:
    """Type-check ``unit`` under ``profile``; returns the annotated facts."""
    return _Analyzer(unit, profile, api, filename).run()
