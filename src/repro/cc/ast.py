"""AST node definitions for MiniC.

Nodes are plain dataclasses.  Semantic analysis annotates expressions
with ``ctype`` and identifier nodes with their resolved ``symbol``;
those fields default to ``None`` until :func:`repro.cc.sema.analyze`
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.cc.types import CType


@dataclass
class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr(Node):
    ctype: Optional[CType] = None


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""
    label: Optional[str] = None     # assigned by codegen


@dataclass
class Ident(Expr):
    name: str = ""
    symbol: Optional[object] = None     # cc.symbols.Symbol


@dataclass
class Unary(Expr):
    op: str = ""                # - ! ~ * & ++ -- (prefix)
    operand: Optional[Expr] = None


@dataclass
class Postfix(Expr):
    op: str = ""                # ++ --
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="               # = += -= *= /= %= &= |= ^= <<= >>=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Call(Expr):
    func: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class SizeOf(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Union[Expr, List[Expr]]] = None
    is_static: bool = False
    is_const: bool = False
    symbol: Optional[object] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str = ""


@dataclass
class LabelStmt(Stmt):
    name: str = ""
    statement: Optional[Stmt] = None


@dataclass
class Switch(Stmt):
    """Parsed then lowered to an if/else chain by the parser itself;
    kept as a node so diagnostics can reference it."""
    cond: Optional[Expr] = None
    cases: List[Tuple[Optional[int], List[Stmt]]] = field(
        default_factory=list)


@dataclass
class InlineAsm(Stmt):
    text: str = ""


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    ctype: CType
    line: int = 0
    symbol: Optional[object] = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    ret: Optional[CType] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None
    is_static: bool = False
    symbol: Optional[object] = None


@dataclass
class TranslationUnit(Node):
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[VarDecl] = field(default_factory=list)
    # struct tag -> StructType lives in the parser's type context


def _children(node):
    """Yield child Nodes, descending through lists and tuples (switch
    cases are (value, [stmts]) tuples)."""
    for value in vars(node).values():
        yield from _nodes_in(value)


def _nodes_in(value):
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _nodes_in(item)


def walk(node):
    """Yield every Node reachable from an AST node (pre-order)."""
    if node is None:
        return
    yield node
    for child in _children(node):
        yield from walk(child)


def walk_expressions(node):
    """Yield every Expr reachable from an AST node (pre-order)."""
    for item in walk(node):
        if isinstance(item, Expr):
            yield item


def walk_statements(node):
    """Yield every Stmt reachable from an AST node (pre-order)."""
    for item in walk(node):
        if isinstance(item, Stmt):
            yield item
