"""Recursive-descent parser for MiniC.

Produces a :class:`~repro.cc.ast.TranslationUnit`.  Full C declarator
syntax is supported (``int (*fp)(int, int)``, ``char *argv[4]``, ...),
since function pointers are one of the language features the paper's
isolation technique exists to allow.

``switch`` is parsed into case groups executed sequentially, so C
fall-through semantics survive code generation.  ``goto`` and inline
``asm`` parse successfully — AFT phase 1 rejects them later with a
proper diagnostic, mirroring the paper's toolchain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import CompileError
from repro.cc import ast
from repro.cc.lexer import tokenize
from repro.cc.tokens import Token, TokenType
from repro.cc.types import (
    ArrayType,
    CHAR,
    CType,
    FunctionType,
    INT,
    PointerType,
    StructType,
    UINT,
    VOID,
)

_TYPE_KEYWORDS = frozenset({
    "int", "unsigned", "signed", "char", "void", "struct", "const",
    "static",
})

_ASSIGN_OPS = frozenset({
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
})

_BINARY_LEVELS: Tuple[Tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Declarator:
    pass


class _DName(_Declarator):
    def __init__(self, name: str, line: int):
        self.name = name
        self.line = line


class _DPointer(_Declarator):
    def __init__(self, inner: _Declarator):
        self.inner = inner


class _DArray(_Declarator):
    def __init__(self, inner: _Declarator, length: Optional[int]):
        self.inner = inner
        self.length = length


class _DFunc(_Declarator):
    def __init__(self, inner: _Declarator,
                 params: List[ast.Param], variadic: bool):
        self.inner = inner
        self.params = params
        self.variadic = variadic


class Parser:
    def __init__(self, source: str, filename: str = "<minic>"):
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.filename = filename
        self.structs: Dict[str, StructType] = {}
        self._label_counter = 0

    # -- token plumbing -----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None
               ) -> CompileError:
        token = token if token is not None else self._peek()
        return CompileError(message, token.line, token.col, self.filename)

    def _accept(self, text: str) -> Optional[Token]:
        token = self._peek()
        if (token.type in (TokenType.PUNCT, TokenType.KEYWORD)
                and token.text == text):
            return self._next()
        return None

    def _expect(self, text: str) -> Token:
        token = self._accept(text)
        if token is None:
            raise self._error(f"expected {text!r}, found "
                              f"{self._peek().text!r}")
        return token

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {token.text!r}")
        return self._next()

    # -- types ------------------------------------------------------------------
    def _starts_type(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        return (token.type is TokenType.KEYWORD
                and token.text in _TYPE_KEYWORDS)

    def _parse_base_type(self) -> Tuple[CType, bool, bool]:
        """Returns (type, is_static, is_const)."""
        is_static = is_const = False
        signedness: Optional[bool] = None
        base: Optional[CType] = None
        while True:
            token = self._peek()
            if token.is_keyword("static"):
                is_static = True
                self._next()
            elif token.is_keyword("const"):
                is_const = True
                self._next()
            elif token.is_keyword("unsigned"):
                signedness = False
                self._next()
            elif token.is_keyword("signed"):
                signedness = True
                self._next()
            elif token.is_keyword("int"):
                self._next()
                base = INT
            elif token.is_keyword("char"):
                self._next()
                base = CHAR
            elif token.is_keyword("void"):
                self._next()
                base = VOID
            elif token.is_keyword("struct"):
                self._next()
                tag = self._expect_ident().text
                if tag not in self.structs:
                    self.structs[tag] = StructType(tag)
                base = self.structs[tag]
            else:
                break
        if base is None:
            if signedness is None:
                raise self._error("expected a type")
            base = INT if signedness else UINT
        elif base is INT and signedness is not None:
            base = INT if signedness else UINT
        # 'signed char' / 'unsigned char' both map to the one char type;
        # MiniC chars are unsigned (see repro.cc.types).
        return base, is_static, is_const

    # -- declarators -----------------------------------------------------------
    def _parse_declarator(self, allow_abstract: bool = False) -> _Declarator:
        if self._accept("*"):
            return _DPointer(self._parse_declarator(allow_abstract))
        return self._parse_direct(allow_abstract)

    def _parse_direct(self, allow_abstract: bool) -> _Declarator:
        token = self._peek()
        if token.is_punct("("):
            # '(' declarator ')' — but '( )' or '(type' is a parameter
            # list of an abstract function declarator.
            if self._starts_type(1) or self._peek(1).is_punct(")"):
                inner: _Declarator = _DName("", token.line)
            else:
                self._next()
                inner = self._parse_declarator(allow_abstract)
                self._expect(")")
        elif token.type is TokenType.IDENT:
            self._next()
            inner = _DName(token.text, token.line)
        elif allow_abstract:
            inner = _DName("", token.line)
        else:
            raise self._error("expected declarator")

        while True:
            if self._accept("["):
                length: Optional[int] = None
                if not self._peek().is_punct("]"):
                    length = self._parse_const_int()
                self._expect("]")
                inner = _DArray(inner, length)
            elif self._accept("("):
                params, variadic = self._parse_params()
                self._expect(")")
                inner = _DFunc(inner, params, variadic)
            else:
                return inner

    def _parse_params(self) -> Tuple[List[ast.Param], bool]:
        params: List[ast.Param] = []
        variadic = False
        if self._peek().is_punct(")"):
            return params, variadic
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._next()
            return params, variadic
        while True:
            if self._accept("..."):
                variadic = True
                break
            base, _static, _const = self._parse_base_type()
            declarator = self._parse_declarator(allow_abstract=True)
            name, ctype = self._apply_declarator(declarator, base)
            # Array parameters decay to pointers.
            if isinstance(ctype, ArrayType):
                ctype = PointerType(ctype.element)
            if isinstance(ctype, FunctionType):
                ctype = PointerType(ctype)
            params.append(ast.Param(name, ctype, self._peek().line))
            if not self._accept(","):
                break
        return params, variadic

    def _apply_declarator(self, declarator: _Declarator,
                          base: CType) -> Tuple[str, CType]:
        if isinstance(declarator, _DName):
            return declarator.name, base
        if isinstance(declarator, _DPointer):
            return self._apply_declarator(declarator.inner,
                                          PointerType(base))
        if isinstance(declarator, _DArray):
            length = declarator.length if declarator.length is not None \
                else 0
            return self._apply_declarator(declarator.inner,
                                          ArrayType(base, length))
        if isinstance(declarator, _DFunc):
            ftype = FunctionType(
                base, tuple(p.ctype for p in declarator.params),
                declarator.variadic)
            name, ctype = self._apply_declarator(declarator.inner, ftype)
            return name, ctype
        raise self._error("bad declarator")

    def _declarator_params(self, declarator: _Declarator
                           ) -> Optional[List[ast.Param]]:
        """Extract the outermost function parameter list, if this
        declarator declares a function (not a function pointer)."""
        if isinstance(declarator, _DFunc) and \
                isinstance(declarator.inner, _DName):
            return declarator.params
        return None

    def _parse_type_name(self) -> CType:
        base, _static, _const = self._parse_base_type()
        declarator = self._parse_declarator(allow_abstract=True)
        _name, ctype = self._apply_declarator(declarator, base)
        return ctype

    def _parse_const_int(self) -> int:
        expr = self._parse_conditional()
        value = _const_eval(expr)
        if value is None:
            raise self._error("expected a constant expression")
        return value

    # -- expressions -----------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            return ast.Assign(line=token.line, op=token.text,
                              target=left, value=value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self.parse_expression()
            self._expect(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(line=cond.line, cond=cond, then=then,
                                   otherwise=otherwise)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            if token.type is TokenType.PUNCT and \
                    token.text in _BINARY_LEVELS[level]:
                self._next()
                right = self._parse_binary(level + 1)
                left = ast.Binary(line=token.line, op=token.text,
                                  left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text in (
                "-", "!", "~", "*", "&", "+"):
            self._next()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(line=token.line, op=token.text,
                             operand=operand)
        if token.is_punct("++") or token.is_punct("--"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text,
                             operand=operand)
        if token.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("(") and self._starts_type(1):
                self._expect("(")
                ctype = self._parse_type_name()
                self._expect(")")
                return ast.SizeOf(line=token.line, target_type=ctype)
            operand = self._parse_unary()
            return ast.SizeOf(line=token.line, operand=operand)
        if token.is_punct("(") and self._starts_type(1):
            self._next()
            ctype = self._parse_type_name()
            self._expect(")")
            operand = self._parse_unary()
            return ast.Cast(line=token.line, target_type=ctype,
                            operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept(","):
                            break
                self._expect(")")
                expr = ast.Call(line=token.line, func=expr, args=args)
            elif token.is_punct("["):
                self._next()
                index = self.parse_expression()
                self._expect("]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.is_punct("."):
                self._next()
                name = self._expect_ident().text
                expr = ast.Member(line=token.line, base=expr, name=name)
            elif token.is_punct("->"):
                self._next()
                name = self._expect_ident().text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=True)
            elif token.is_punct("++") or token.is_punct("--"):
                self._next()
                expr = ast.Postfix(line=token.line, op=token.text,
                                   operand=expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._next()
        if token.type is TokenType.NUMBER:
            return ast.IntLiteral(line=token.line, value=token.value)
        if token.type is TokenType.CHAR:
            return ast.CharLiteral(line=token.line, value=token.value)
        if token.type is TokenType.STRING:
            return ast.StringLiteral(line=token.line, value=token.text)
        if token.type is TokenType.IDENT:
            return ast.Ident(line=token.line, name=token.text)
        if token.is_punct("("):
            expr = self.parse_expression()
            self._expect(")")
            return expr
        raise self._error(f"unexpected token {token.text!r}", token)

    # -- statements --------------------------------------------------------------
    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()

        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            self._next()
            self._expect("(")
            cond = self.parse_expression()
            self._expect(")")
            then = self._parse_statement()
            otherwise = None
            if self._accept("else"):
                otherwise = self._parse_statement()
            return ast.If(line=token.line, cond=cond, then=then,
                          otherwise=otherwise)
        if token.is_keyword("while"):
            self._next()
            self._expect("(")
            cond = self.parse_expression()
            self._expect(")")
            body = self._parse_statement()
            return ast.While(line=token.line, cond=cond, body=body)
        if token.is_keyword("do"):
            self._next()
            body = self._parse_statement()
            self._expect("while")
            self._expect("(")
            cond = self.parse_expression()
            self._expect(")")
            self._expect(";")
            return ast.DoWhile(line=token.line, body=body, cond=cond)
        if token.is_keyword("for"):
            self._next()
            self._expect("(")
            init: Optional[ast.Stmt] = None
            if not self._peek().is_punct(";"):
                if self._starts_type():
                    init = self._parse_declaration_statement()
                else:
                    init = ast.ExprStmt(line=token.line,
                                        expr=self.parse_expression())
                    self._expect(";")
            else:
                self._expect(";")
            cond = None
            if not self._peek().is_punct(";"):
                cond = self.parse_expression()
            self._expect(";")
            step = None
            if not self._peek().is_punct(")"):
                step = self.parse_expression()
            self._expect(")")
            body = self._parse_statement()
            return ast.For(line=token.line, init=init, cond=cond,
                           step=step, body=body)
        if token.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self.parse_expression()
            self._expect(";")
            return ast.Return(line=token.line, value=value)
        if token.is_keyword("break"):
            self._next()
            self._expect(";")
            return ast.Break(line=token.line)
        if token.is_keyword("continue"):
            self._next()
            self._expect(";")
            return ast.Continue(line=token.line)
        if token.is_keyword("goto"):
            self._next()
            label = self._expect_ident().text
            self._expect(";")
            return ast.Goto(line=token.line, label=label)
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("asm") or token.is_keyword("__asm__"):
            self._next()
            self._expect("(")
            text_token = self._next()
            if text_token.type is not TokenType.STRING:
                raise self._error("asm() needs a string", text_token)
            self._expect(")")
            self._expect(";")
            return ast.InlineAsm(line=token.line, text=text_token.text)
        if token.type is TokenType.IDENT and self._peek(1).is_punct(":"):
            self._next()
            self._next()
            statement = self._parse_statement()
            return ast.LabelStmt(line=token.line, name=token.text,
                                 statement=statement)
        if self._starts_type():
            return self._parse_declaration_statement()
        if token.is_punct(";"):
            self._next()
            return ast.ExprStmt(line=token.line, expr=None)

        expr = self.parse_expression()
        self._expect(";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_switch(self) -> ast.Stmt:
        token = self._expect("switch")
        self._expect("(")
        cond = self.parse_expression()
        self._expect(")")
        self._expect("{")
        cases: List[Tuple[Optional[int], List[ast.Stmt]]] = []
        current: Optional[List[ast.Stmt]] = None
        while not self._peek().is_punct("}"):
            if self._accept("case"):
                value = self._parse_const_int()
                self._expect(":")
                current = []
                cases.append((value, current))
            elif self._accept("default"):
                self._expect(":")
                current = []
                cases.append((None, current))
            else:
                if current is None:
                    raise self._error("statement before first case label")
                current.append(self._parse_statement())
        self._expect("}")
        return ast.Switch(line=token.line, cond=cond, cases=cases)

    def _parse_block(self) -> ast.Block:
        token = self._expect("{")
        statements: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            if self._peek().type is TokenType.EOF:
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect("}")
        return ast.Block(line=token.line, statements=statements)

    def _parse_initializer(self) -> Union[ast.Expr, List[ast.Expr]]:
        if self._accept("{"):
            items: List[ast.Expr] = []
            if not self._peek().is_punct("}"):
                while True:
                    items.append(self._parse_assignment())
                    if not self._accept(","):
                        break
            self._expect("}")
            return items
        return self._parse_assignment()

    def _parse_declaration_statement(self) -> ast.Stmt:
        base, is_static, is_const = self._parse_base_type()
        block = ast.Block(line=self._peek().line)
        while True:
            declarator = self._parse_declarator()
            name, ctype = self._apply_declarator(declarator, base)
            if not name:
                raise self._error("declaration needs a name")
            decl = ast.VarDecl(line=self._peek().line, name=name,
                               ctype=ctype, is_static=is_static,
                               is_const=is_const)
            if self._accept("="):
                decl.init = self._parse_initializer()
                decl.ctype = _infer_array_length(decl.ctype, decl.init)
            block.statements.append(decl)
            if not self._accept(","):
                break
        self._expect(";")
        if len(block.statements) == 1:
            return block.statements[0]
        return block

    # -- top level -------------------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while self._peek().type is not TokenType.EOF:
            if self._peek().is_keyword("struct") and \
                    self._peek(2).is_punct("{"):
                self._parse_struct_definition()
                continue
            base, is_static, is_const = self._parse_base_type()
            if self._accept(";"):
                continue       # bare 'struct foo;' declaration
            declarator = self._parse_declarator()
            name, ctype = self._apply_declarator(declarator, base)
            if isinstance(ctype, FunctionType) and self._peek().is_punct("{"):
                params = self._declarator_params(declarator) or []
                body = self._parse_block()
                unit.functions.append(
                    ast.FunctionDef(line=body.line, name=name,
                                    ret=ctype.ret, params=params,
                                    body=body, is_static=is_static))
                continue
            if isinstance(ctype, FunctionType):
                # prototype; record as a declaration-only function
                params = self._declarator_params(declarator) or []
                unit.functions.append(
                    ast.FunctionDef(line=self._peek().line, name=name,
                                    ret=ctype.ret, params=params,
                                    body=None, is_static=is_static))
                self._expect(";")
                continue
            # global variable(s)
            while True:
                decl = ast.VarDecl(line=self._peek().line, name=name,
                                   ctype=ctype, is_static=is_static,
                                   is_const=is_const)
                if self._accept("="):
                    decl.init = self._parse_initializer()
                    decl.ctype = _infer_array_length(decl.ctype, decl.init)
                unit.globals.append(decl)
                if not self._accept(","):
                    break
                declarator = self._parse_declarator()
                name, ctype = self._apply_declarator(declarator, base)
            self._expect(";")
        return unit

    def _parse_struct_definition(self) -> None:
        self._expect("struct")
        tag = self._expect_ident().text
        if tag in self.structs and self.structs[tag].complete:
            raise self._error(f"struct {tag} redefined")
        struct = self.structs.setdefault(tag, StructType(tag))
        self._expect("{")
        while not self._peek().is_punct("}"):
            base, _static, _const = self._parse_base_type()
            while True:
                declarator = self._parse_declarator()
                name, ctype = self._apply_declarator(declarator, base)
                if isinstance(ctype, StructType) and not ctype.complete:
                    raise self._error(
                        f"field {name!r} has incomplete type {ctype}")
                struct.add_field(name, ctype, self._peek().line)
                if not self._accept(","):
                    break
            self._expect(";")
        self._expect("}")
        self._expect(";")
        struct.finish()


def _const_eval(expr: ast.Expr) -> Optional[int]:
    """Fold the constant expressions used in case labels and array sizes."""
    if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_eval(expr.operand)
        return None if inner is None else (-inner) & 0xFFFF
    if isinstance(expr, ast.Unary) and expr.op == "~":
        inner = _const_eval(expr.operand)
        return None if inner is None else (~inner) & 0xFFFF
    if isinstance(expr, ast.Binary):
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "<<": lambda: left << (right & 15),
                ">>": lambda: left >> (right & 15),
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
            }[expr.op]() & 0xFFFF
        except (KeyError, TypeError):
            return None
    return None


def _infer_array_length(ctype: CType,
                        init: Union[ast.Expr, List[ast.Expr]]) -> CType:
    if isinstance(ctype, ArrayType) and ctype.length == 0:
        if isinstance(init, list):
            return ArrayType(ctype.element, len(init))
        if isinstance(init, ast.StringLiteral):
            return ArrayType(ctype.element, len(init.value) + 1)
    return ctype


def parse(source: str, filename: str = "<minic>") -> ast.TranslationUnit:
    """Parse MiniC source into a translation unit.

    The parser instance's ``structs`` table rides along on the returned
    unit as ``unit.structs`` for sema's benefit.
    """
    parser = Parser(source, filename)
    unit = parser.parse_unit()
    unit.structs = parser.structs  # type: ignore[attr-defined]
    return unit
