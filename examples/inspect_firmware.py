#!/usr/bin/env python3
"""Peek inside a built firmware: memory map, inserted checks, gate
disassembly — the AFT's four phases made visible.

    python examples/inspect_firmware.py
"""

from repro import AftPipeline, AppSource, IsolationModel
from repro.aft.models import boundary_symbols
from repro.asm.disassembler import disassemble_range
from repro.kernel.machine import AmuletMachine

APP = """
int ring[8];
int head = 0;

int on_push(int value) {
    int *slot = &ring[head];
    *slot = value;
    head = (head + 1) % 8;
    return head;
}
"""


def main() -> None:
    pipeline = AftPipeline(IsolationModel.MPU)
    firmware = pipeline.build(
        [AppSource("ring", APP, handlers=["on_push"])])

    print("=== AFT report (phases 1-4) ===")
    print(pipeline.report.describe())
    print()

    app = firmware.apps["ring"]
    bounds = boundary_symbols("ring")
    print("=== Memory map (paper Figure 1) ===")
    print(f"  app code   : 0x{app.code_lo:04X}-0x{app.code_hi:04X} "
          f"(MPU seg1 tail, --X)")
    print(f"  app stack  : 0x{app.seg_lo:04X}-0x{app.stack_top:04X} "
          f"(grows down; overflow hits execute-only code)")
    print(f"  app data   : 0x{app.stack_top:04X}-0x{app.seg_hi:04X} "
          f"(MPU seg2, RW-)")
    print(f"  MPU config : {app.mpu_config.render()}")
    print(f"  D_i symbol : {bounds.seg_lo} = "
          f"0x{firmware.symbol(bounds.seg_lo):04X}")
    print()

    machine = AmuletMachine(firmware)
    print("=== Handler disassembly (first 24 instructions) ===")
    handler = firmware.handler_address("ring", "on_push")
    for address, insn in disassemble_range(
            machine.cpu.memory, handler, app.code_hi)[:24]:
        marker = ""
        text = insn.render()
        if bounds.seg_lo in ("",):      # symbol folded into constants
            pass
        if text.startswith("CMP #") and "R" in text:
            marker = "   <-- compiler-inserted lower-bound check"
        print(f"  0x{address:04X}:  {text}{marker}")
    print()

    print("=== Dispatch gate (context switch) ===")
    gate = firmware.dispatch_symbol("ring")
    for address, insn in disassemble_range(
            machine.cpu.memory, gate, gate + 60):
        text = insn.render()
        note = ""
        if "0x05A0" in text:
            note = "   <-- MPUCTL0 (password + enable)"
        elif "0x05A6" in text or "0x05A4" in text:
            note = "   <-- MPU segment boundary"
        elif "0x05A8" in text:
            note = "   <-- MPUSAM permissions"
        print(f"  0x{address:04X}:  {text}{note}")

    print()
    result = machine.dispatch("ring", "on_push", [123])
    print(f"dispatch on_push(123) -> {result.return_value} "
          f"in {result.cycles} cycles")


if __name__ == "__main__":
    main()
