#!/usr/bin/env python3
"""Porting real C to the Amulet — the paper's motivation in action.

The original Amulet language (AmuletC) forbids pointers and recursion,
so ordinary C like the ring-buffer/statistics module below simply does
not compile.  The paper's MPU-assisted isolation admits it unchanged
while still confining it to its own memory region.

    python examples/port_c_app.py
"""

from repro import AftPipeline, AppSource, IsolationModel
from repro.errors import CompileError
from repro.kernel.machine import AmuletMachine

# A typical C sensor-processing module: pointer iterators, a function
# pointer for the reducer, recursion in the quickselect — all illegal
# under AmuletC, all fine under the MPU model.
PORTED_C = """
int samples[16];
int scratch[16];

int reduce(int *begin, int *end, int (*op)(int, int), int seed) {
    int acc = seed;
    int *p;
    for (p = begin; p < end; p++) {
        acc = op(acc, *p);
    }
    return acc;
}

int add(int a, int b) { return a + b; }
int max2(int a, int b) { return a > b ? a : b; }

/* recursive quickselect: k-th smallest */
int select_kth(int *a, int lo, int hi, int k) {
    int pivot = a[hi];
    int i = lo - 1;
    int j;
    int t;
    if (lo >= hi) return a[lo];
    for (j = lo; j < hi; j++) {
        if (a[j] <= pivot) {
            i++;
            t = a[i]; a[i] = a[j]; a[j] = t;
        }
    }
    t = a[i + 1]; a[i + 1] = a[hi]; a[hi] = t;
    if (k == i + 1) return a[k];
    if (k < i + 1) return select_kth(a, lo, i, k);
    return select_kth(a, i + 2, hi, k);
}

int on_window(int seed) {
    int i;
    int v = seed;
    int sum;
    int peak;
    int median;
    for (i = 0; i < 16; i++) {
        v = v * 31 + 7;
        samples[i] = v % 1000;
        scratch[i] = samples[i];
    }
    sum = reduce(samples, samples + 16, add, 0);
    peak = reduce(samples, samples + 16, max2, 0);
    median = select_kth(scratch, 0, 15, 8);
    amulet_log_word(sum);
    amulet_log_word(peak);
    amulet_log_word(median);
    return median;
}
"""


def main() -> None:
    app = AppSource("ported", PORTED_C, handlers=["on_window"])

    print("1. Building under the original Amulet approach "
          "(Feature Limited / AmuletC):")
    try:
        AftPipeline(IsolationModel.FEATURE_LIMITED).build([app])
        print("   unexpectedly compiled!")
    except CompileError as error:
        print(f"   rejected, as the paper describes: {error}")
    print()

    print("2. Building the same source under the MPU-assisted model:")
    firmware = AftPipeline(IsolationModel.MPU).build([app])
    layout = firmware.apps["ported"]
    print(f"   {layout.summary()}")
    print(f"   recursion detected -> default stack of "
          f"{layout.stack_bytes} bytes "
          f"(static analysis cannot bound it; paper section 3)")
    print()

    machine = AmuletMachine(firmware)
    result = machine.dispatch("ported", "on_window", [42])
    sum_, peak, median = machine.services.log.words
    print(f"   on_window(42) ran in {result.cycles} cycles:")
    print(f"     sum={sum_}  peak={peak}  median={median}")
    assert not result.faulted


if __name__ == "__main__":
    main()
