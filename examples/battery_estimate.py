#!/usr/bin/env python3
"""Estimate the battery cost of isolating *your* app, the way the
paper's section 4.1 does: ARP counts × event rates × per-operation
overheads × the energy model.

    python examples/battery_estimate.py
"""

from repro.aft.models import IsolationModel
from repro.aft.phases import AppSource
from repro.apps.manifests import AppManifest, HandlerRate
from repro.experiments.figure2 import overheads_from_table1
from repro.experiments.table1 import run_table1
from repro.kernel.events import EventType
from repro.profiler.arp import ArpProfiler
from repro.profiler.arpview import ArpView
from repro.profiler.energy import EnergyModel

# Your app: a 25 Hz gesture recognizer with a minute-level summary.
MY_APP = """
int window[25];
int head = 0;
int gestures = 0;

int on_sample(int x, int y, int z) {
    int i;
    int energy = 0;
    window[head] = x + y + z;
    head = (head + 1) % 25;
    for (i = 0; i < 25; i++) {
        energy += window[i] > 1500 ? 1 : 0;
    }
    if (energy > 15) {
        gestures++;
        amulet_vibrate(1);
    }
    return gestures;
}

void on_summary(int minute) {
    amulet_log_word(gestures);
    amulet_display_digits(gestures);
}
"""

MANIFEST = AppManifest("gestures", "GestureCounter", (
    HandlerRate("on_sample", EventType.ACCEL_SAMPLE, 40),   # 25 Hz
    HandlerRate("on_summary", EventType.TIMER, 60 * 1000),
))


def main() -> None:
    print("Measuring per-operation overheads (Table 1 protocol, "
          "50 runs)...")
    table1 = run_table1(runs=50)
    per_op = overheads_from_table1(table1)

    print("Profiling the app's handlers with ARP (counting build)...")
    profiler = ArpProfiler([AppSource("gestures", MY_APP,
                                      list(MANIFEST.handlers))])
    profile = profiler.profile_app(MANIFEST, samples=48)
    print(profile.describe())
    print()

    energy = EnergyModel()     # FR5969 @ 16 MHz, 110 mAh, 2-week life
    view = ArpView(energy)
    print(f"{'Model':<16}{'cycles/week':>16}{'energy/week':>14}"
          f"{'battery impact':>16}")
    for model in (IsolationModel.FEATURE_LIMITED, IsolationModel.MPU,
                  IsolationModel.SOFTWARE_ONLY):
        weekly = view.weekly_overhead(profile, MANIFEST, per_op[model])
        joules = energy.cycles_to_joules(weekly.cycles_per_week)
        print(f"{model.display:<16}"
              f"{weekly.cycles_per_week / 1e9:>14.3f}B"
              f"{joules:>13.3f}J"
              f"{weekly.battery_impact_percent:>15.3f}%")
    print()
    print("(The paper's bar to clear: < 0.5% battery impact.)")


if __name__ == "__main__":
    main()
