#!/usr/bin/env python3
"""Regenerate every table and figure from the paper's evaluation in
one run and print a combined report with the paper's numbers alongside.

    python examples/run_paper_experiments.py [--quick]

``--quick`` trades statistical weight for speed (useful for smoke
runs); the default uses the paper's 200-run protocol where applicable.
"""

import sys
import time

from repro.experiments.report import run_all


def main() -> None:
    quick = "--quick" in sys.argv
    table1_runs = 30 if quick else 200
    figure3_runs = 30 if quick else 200
    arp_samples = 16 if quick else 64

    start = time.time()
    print(f"Running all experiments "
          f"({'quick' if quick else 'full'} protocol)...\n")
    report = run_all(table1_runs=table1_runs,
                     figure3_runs=figure3_runs,
                     arp_samples=arp_samples)
    print(report.render())
    print(f"\ntotal wall-clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
