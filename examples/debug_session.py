#!/usr/bin/env python3
"""Debugging a compiled app on the simulator: breakpoints, watchpoints,
backtraces — handy when a port misbehaves before the isolation checks
even get a chance to complain.

    python examples/debug_session.py
"""

from repro.cc.codegen import compile_unit
from repro.cc.execution import BareMachine
from repro.msp430.cpu import Cpu
from repro.msp430.debug import Debugger
from repro.ports import DONE_PORT

SOURCE = """
int balance = 100;

int withdraw(int amount) {
    balance = balance - amount;   /* no overdraft check! */
    return balance;
}

int spend_all(void) {
    int i;
    for (i = 0; i < 4; i++) {
        withdraw(30);
    }
    return balance;
}

int main(void) { return spend_all(); }
"""


def main() -> None:
    unit = compile_unit(SOURCE)
    machine = BareMachine(unit)
    image = machine._link_for("main")

    cpu = Cpu()
    image.load_into(cpu.memory)
    cpu.memory.add_io(DONE_PORT, write=lambda a, v: cpu.halt())
    cpu.regs.pc = image.symbol("__start")
    cpu.regs.sp = 0x2400

    debugger = Debugger(cpu)
    withdraw = image.symbol("withdraw")
    balance = image.symbol("balance")
    debugger.add_breakpoint(withdraw)
    debugger.add_watchpoint(balance)

    print(f"breakpoint at withdraw (0x{withdraw:04X}), "
          f"watchpoint on balance (0x{balance:04X})\n")

    stop = 0
    while debugger.run() == withdraw:
        stop += 1
        current = cpu.memory.read_word(balance)
        print(f"--- stop #{stop}: withdraw() about to run, "
              f"balance={current - 0x10000 if current & 0x8000 else current}")
        print(debugger.backtrace_text(image.symbols))
        print()

    final = cpu.regs.read(12)
    print(f"program finished; spend_all() returned "
          f"{final - 0x10000 if final & 0x8000 else final}")
    print(f"\nbalance was written {len(debugger.watch_hits)} times:")
    for hit in debugger.watch_hits:
        print(f"  cycle {hit.cycle:>5}: write at 0x{hit.address:04X}")
    print("\nlast instructions executed:")
    print("\n".join(debugger.trace_text().splitlines()[-6:]))


if __name__ == "__main__":
    main()
