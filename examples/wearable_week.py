#!/usr/bin/env python3
"""Simulate the full nine-app Amulet wearable for a slice of wall-clock
time under each isolation method, with a misbehaving third-party app
thrown in to exercise the fault-handling/restart machinery.

    python examples/wearable_week.py [seconds]
"""

import sys

from repro import AftPipeline, AppSource, IsolationModel
from repro.apps import MANIFESTS, load_suite
from repro.kernel.events import EventType, PeriodicSource
from repro.kernel.machine import AmuletMachine
from repro.kernel.scheduler import (
    AppSchedule,
    RestartPolicy,
    Scheduler,
)

ROGUE = """
int calls = 0;
int on_sample(int x) {
    calls++;
    if (calls > 5) {
        int *p = (int *)0x4400;   /* wanders into the OS after a bit */
        return *p;
    }
    return calls;
}
"""


def simulate(model: IsolationModel, seconds: int) -> None:
    apps = load_suite()
    with_rogue = model is not IsolationModel.FEATURE_LIMITED
    if with_rogue:
        # the rogue needs pointers; AmuletC would reject it at build
        apps = apps + [AppSource("rogue", ROGUE,
                                 handlers=["on_sample"])]
    firmware = AftPipeline(model).build(apps)
    machine = AmuletMachine(firmware)
    scheduler = Scheduler(machine,
                          policy=RestartPolicy.RESTART_AFTER,
                          restart_cooldown_ms=2000)

    for name, manifest in MANIFESTS.items():
        scheduler.add_app(AppSchedule(
            name, sources=manifest.sources_for(name)))
    if with_rogue:
        scheduler.add_app(AppSchedule("rogue", sources=[
            PeriodicSource("rogue", "on_sample", EventType.TIMER,
                           500)]))

    stats = scheduler.run(horizon_ms=seconds * 1000)

    total_cycles = sum(stats.per_app_cycles.values())
    print(f"--- {model.display} ---")
    print(f"  events delivered : {stats.events_delivered}")
    print(f"  events dropped   : {stats.events_dropped} "
          f"(rogue app suspensions)")
    print(f"  faults caught    : {stats.faults}")
    print(f"  app cycles total : {total_cycles:,}")
    busiest = sorted(stats.per_app_cycles.items(),
                     key=lambda kv: -kv[1])[:3]
    for name, cycles in busiest:
        print(f"    {name:<14} {cycles:>10,} cycles "
              f"({stats.per_app_events.get(name, 0)} events)")
    print(f"  display shows    : {machine.services.display.last_digits}")
    print(f"  fault log        :")
    for record in machine.fault_log.records[:3]:
        print(f"    {record.describe()}")
    print()


def main() -> None:
    seconds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"Simulating the nine-app wearable plus a rogue app for "
          f"{seconds} simulated seconds.\n")
    for model in (IsolationModel.FEATURE_LIMITED, IsolationModel.MPU,
                  IsolationModel.SOFTWARE_ONLY):
        simulate(model, seconds)

    print("Note: the rogue app needs pointers, so under Feature "
          "Limited it is rejected at build time instead —")
    try:
        AftPipeline(IsolationModel.FEATURE_LIMITED).build(
            [AppSource("rogue", ROGUE, handlers=["on_sample"])])
    except Exception as error:
        print(f"  {error}")


if __name__ == "__main__":
    main()
