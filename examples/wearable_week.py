#!/usr/bin/env python3
"""Simulate the full nine-app Amulet wearable for a slice of wall-clock
time under each isolation method, with a misbehaving third-party app
thrown in to exercise the fault-handling/restart machinery.

This is the fleet layer's ``--devices 1`` path: the wearable is a
:func:`repro.fleet.population.reference_device_spec` device driven by
:func:`repro.fleet.device.simulate_device`, so the demo exercises
exactly the code the sharded campaigns run.

    python examples/wearable_week.py [seconds]
"""

import sys

from repro import AftPipeline, AppSource, IsolationModel
from repro.fleet.device import simulate_device
from repro.fleet.population import ROGUE_SOURCE, reference_device_spec


def simulate(model: IsolationModel, seconds: int) -> None:
    spec = reference_device_spec(rogue=True)
    run = simulate_device(spec, model, sim_ms=seconds * 1000)
    stats = run.scheduler.stats
    machine = run.machine

    total_cycles = sum(stats.per_app_cycles.values())
    print(f"--- {model.display} ---")
    if not run.rogue_built:
        print("  (rogue app rejected at build time)")
    print(f"  events delivered : {stats.events_delivered}")
    print(f"  events dropped   : {stats.events_dropped} "
          f"(rogue app suspensions)")
    print(f"  faults caught    : {stats.faults}")
    print(f"  rogue restarts   : {stats.restarts}")
    print(f"  app cycles total : {total_cycles:,}")
    busiest = sorted(stats.per_app_cycles.items(),
                     key=lambda kv: -kv[1])[:3]
    for name, cycles in busiest:
        print(f"    {name:<14} {cycles:>10,} cycles "
              f"({stats.per_app_events.get(name, 0)} events)")
    print(f"  display shows    : {machine.services.display.last_digits}")
    print(f"  fault log        :")
    for record in machine.fault_log.records[:3]:
        print(f"    {record.describe()}")
    print()


def main() -> None:
    seconds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"Simulating the nine-app wearable plus a rogue app for "
          f"{seconds} simulated seconds.\n")
    for model in (IsolationModel.FEATURE_LIMITED, IsolationModel.MPU,
                  IsolationModel.SOFTWARE_ONLY):
        simulate(model, seconds)

    print("Note: the rogue app needs pointers, so under Feature "
          "Limited it is rejected at build time instead —")
    try:
        AftPipeline(IsolationModel.FEATURE_LIMITED).build(
            [AppSource("rogue", ROGUE_SOURCE, handlers=["on_sample"])])
    except Exception as error:
        print(f"  {error}")


if __name__ == "__main__":
    main()
