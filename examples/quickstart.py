#!/usr/bin/env python3
"""Quickstart: build a tiny app with the AFT, run it on the simulated
MCU under the paper's MPU-assisted isolation, and watch a stray
pointer get caught.

    python examples/quickstart.py
"""

from repro import AftPipeline, AppSource, IsolationModel
from repro.kernel.machine import AmuletMachine

COUNTER_APP = """
int total = 0;

int on_tick(int step) {
    total += step;
    amulet_log_word(total);
    return total;
}
"""

BUGGY_APP = """
int on_tick(int step) {
    int *p = (int *)0x2000;   /* points into the OS stack! */
    *p = step;                 /* compiler-inserted check fires */
    return 0;
}
"""


def main() -> None:
    # The AFT runs its four phases: feature checks, check insertion,
    # section layout, and the final link with patched app boundaries.
    firmware = AftPipeline(IsolationModel.MPU).build([
        AppSource("counter", COUNTER_APP, handlers=["on_tick"]),
        AppSource("buggy", BUGGY_APP, handlers=["on_tick"]),
    ])

    print("Firmware layout:")
    for app in firmware.app_list():
        print(f"  {app.summary()}")
    print(f"  OS MPU config: {firmware.os_mpu_config.render()}")
    print()

    machine = AmuletMachine(firmware)

    print("Dispatching counter.on_tick three times:")
    for step in (5, 10, 20):
        result = machine.dispatch("counter", "on_tick", [step])
        print(f"  on_tick({step}) -> {result.return_value} "
              f"({result.cycles} cycles)")
    print(f"  OS log received: {machine.services.log.words}")
    print()

    print("Dispatching buggy.on_tick (writes into the OS stack):")
    result = machine.dispatch("buggy", "on_tick", [1])
    print(f"  faulted: {result.faulted}")
    print(f"  {result.fault.describe()}")
    print()

    print("The counter app is unaffected:")
    result = machine.dispatch("counter", "on_tick", [1])
    print(f"  on_tick(1) -> {result.return_value}")


if __name__ == "__main__":
    main()
